#!/usr/bin/env python
"""Serving-tier benchmark: batched vs. unbatched, closed and open loop.

Drives a real :class:`repro.serving.QueryService` (threads executor, no
result cache, so every request truly executes) with the
:mod:`repro.experiments.loadgen` drivers and records, per concurrency
level:

* throughput and client-observed p50/p95/p99 latency, and
* **partitions loaded per query** — the figure partition-aware
  micro-batching exists to shrink: grouping a flush window by Tardis-G
  home partition amortizes one load across every grouped query, so at
  concurrency >= 8 the batched value must be strictly below the
  unbatched 1.0 (the ``--check`` gate CI enforces).

Also runs an open-loop (Poisson) pass at a deliberately low offered
rate against a ``shed``-policy service and checks nothing sheds — the
admission queue must absorb normal traffic without dropping.

Finally measures observability overhead (docs/OBSERVABILITY.md): the
same batched closed-loop workload with request tracing off and on,
interleaved.  With tracing disabled the serving hot path runs no-op
null spans, so two identical disabled configurations must agree to <3%
— the ``--check`` gate enforces that the disabled-tracing delta stays
within run noise.  The enabled-tracing overhead is reported alongside
for sizing.

The *trace-overhead* section repeats that discipline on the sharded
scatter/gather path: the same multi-partitions workload against a
2-shard cluster with the distributed-tracing plane off, sampled at 10%
and fully on.  Carrier stamping and compact span shipping only run for
sampled-in traces, so the off/sampled/full spread prices the cluster
observability plane; only the disabled A/B delta gates (<3%).

A final *attribution* pass re-runs the batched closed loop with the
kernel cost counters on (docs/OBSERVABILITY.md, "Cost attribution &
profiling") and reports how much of the pass's wall the named kernels
explain.  Serving walls include client think time and queue waits, so
the fraction is informational here (unlike bench_parallel, where the
batch stages must reach 90%); the per-kernel seconds still show where
execute time actually goes.

The *ingest* section prices the streaming-write path
(docs/SERVING.md, "Writes & online rebalancing"): closed-loop mixes at
0/10/50% writes against a WAL-backed service with the online
rebalancer running, plus a pure-append pass for throughput.  Read
latencies are segregated from write latencies, so the gated claim —
p99 read at a 10% write mix within 25% of the read-only p99 — compares
like with like; the longest rebalance swap pause is reported and
bounded (reads never block on a repack).

The host block records ``cpu_count`` *and* ``cpu_affinity`` (cores
this process may actually schedule on — cgroup-limited in CI) plus
``oversubscribed`` when the peak client concurrency exceeds them, so a
committed report can't mistake scheduler thrash for a regression.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py                 # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --check # CI
    PYTHONPATH=src python benchmarks/bench_serving.py --out BENCH_serving.json

Wall-clock numbers depend on the host (the report records cpu_count
and cpu_affinity); the partitions-per-query ratios are load-dependent
but hardware-independent.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import host_info  # noqa: E402
from repro.core import TardisConfig, build_tardis_index  # noqa: E402
from repro.experiments.loadgen import closed_loop, open_loop  # noqa: E402
from repro.serving import QueryService  # noqa: E402
from repro.telemetry.perf import (  # noqa: E402
    KERNELS,
    attributed_fraction,
)
from repro.tsdb import random_walk  # noqa: E402


def make_service(index, max_batch: int, policy: str = "block",
                 queue: int = 512) -> QueryService:
    return QueryService(
        index,
        queue_capacity=queue,
        policy=policy,
        max_batch=max_batch,
        max_delay_ms=2.0,
        executor="threads",
        result_cache_size=None,  # measure execution, not memoization
    )


def closed_loop_scenarios(index, pool, args) -> list[dict]:
    rows = []
    for concurrency in args.concurrencies:
        for label, max_batch in (("unbatched", 1), ("batched", args.batch)):
            with make_service(index, max_batch) as service:
                report = closed_loop(
                    service, pool, total=args.total,
                    concurrency=concurrency, seed=11,
                    op="knn", strategy="target-node", k=10,
                )
                stats = service.stats()
            row = {
                "scenario": label,
                "concurrency": concurrency,
                "max_batch": max_batch,
                **report.to_dict(),
                "partitions_per_query": stats["partitions_per_query"],
                "batch_occupancy_mean": stats["batch_occupancy_mean"],
                "partition_loads": stats["partition_loads"],
            }
            rows.append(row)
            print(
                f"  closed-loop c={concurrency:<3} {label:<9} "
                f"{report.achieved_qps:8.0f} q/s  "
                f"p95 {report.percentiles()['p95_s'] * 1000:7.2f} ms  "
                f"loads/query {row['partitions_per_query']:.3f}  "
                f"occupancy {row['batch_occupancy_mean']:.2f}"
            )
    return rows


def open_loop_scenario(index, pool, args) -> dict:
    with make_service(index, args.batch, policy="shed") as service:
        report = open_loop(
            service, pool, rate_qps=args.rate, duration_s=args.duration,
            seed=13, op="knn", strategy="target-node", k=10,
        )
        stats = service.stats()
    row = {
        "scenario": "open-loop-low-rate",
        "policy": "shed",
        **report.to_dict(),
        "partitions_per_query": stats["partitions_per_query"],
        "queue_max_depth": stats["max_queue_depth"],
    }
    print(
        f"  open-loop  rate={args.rate:.0f} q/s  sent {report.sent}  "
        f"shed {report.shed}  p99 {report.percentiles()['p99_s'] * 1000:.2f} ms"
    )
    return row


def observability_overhead(index, pool, args) -> dict:
    """Traced vs. untraced throughput on the identical batched workload."""
    from repro.telemetry.spans import disable_tracing, enable_tracing

    def one_pass() -> float:
        with make_service(index, args.batch) as service:
            report = closed_loop(
                service, pool, total=args.total, concurrency=8, seed=17,
                op="knn", strategy="target-node", k=10,
            )
        return report.achieved_qps

    # Two interleaved sets of DISABLED passes (A, B) measure what the
    # acceptance bar cares about: with tracing off the hot path runs
    # null-span no-ops, so two identical disabled configurations must
    # agree to <3% — any instrumentation cost is inside run noise.  The
    # enabled passes price full tracing, reported but not gated (at
    # microsecond query latencies span bookkeeping is legitimately
    # visible).
    off_a: list[float] = []
    off_b: list[float] = []
    on: list[float] = []
    disable_tracing()
    one_pass()  # warm partition caches and thread pools before timing
    for _ in range(args.overhead_reps):
        disable_tracing()
        off_a.append(one_pass())
        off_b.append(one_pass())
        tracer = enable_tracing(reset=True)
        tracer.set_root_limit(256)
        on.append(one_pass())
    disable_tracing()

    off = off_a + off_b
    qps_off = float(np.median(off))
    qps_on = float(np.median(on))
    disabled_delta_pct = (
        100.0 * abs(float(np.median(off_a)) - float(np.median(off_b)))
        / qps_off
    )
    enabled_overhead_pct = 100.0 * (qps_off - qps_on) / qps_off
    row = {
        "scenario": "observability-overhead",
        "reps": args.overhead_reps,
        "qps_tracing_off": round(qps_off, 1),
        "qps_tracing_on": round(qps_on, 1),
        "tracing_off_reps_qps": [round(v, 1) for v in off],
        "tracing_on_reps_qps": [round(v, 1) for v in on],
        "disabled_delta_pct": round(disabled_delta_pct, 2),
        "enabled_overhead_pct": round(enabled_overhead_pct, 2),
    }
    print(
        f"  overhead   tracing off {qps_off:8.0f} q/s  "
        f"on {qps_on:8.0f} q/s  "
        f"disabled A/B delta {disabled_delta_pct:.2f}%  "
        f"enabled {enabled_overhead_pct:+.2f}%"
    )
    return row


def kernel_attribution(index, pool, args) -> dict:
    """One batched closed-loop pass with the kernel counters enabled.

    Serving wall time includes client think time, admission queueing
    and flush-window delays, so the attributed fraction is expected to
    sit well below bench_parallel's 90% bar — it is reported for
    context, not gated.  The per-kernel seconds are the useful part:
    they split the execute path (route, exec_compute, exec_dispatch)
    out of the end-to-end latency.
    """
    KERNELS.enable(reset=True)
    try:
        t0 = time.perf_counter()
        with make_service(index, args.batch) as service:
            closed_loop(
                service, pool, total=args.total, concurrency=8, seed=19,
                op="knn", strategy="target-node", k=10,
            )
        wall_s = time.perf_counter() - t0
    finally:
        KERNELS.disable()
    kernels = KERNELS.totals()
    attributed_s, fraction = attributed_fraction(kernels, wall_s)
    row = {
        "scenario": "kernel-attribution",
        "wall_s": round(wall_s, 6),
        "attributed_s": round(attributed_s, 6),
        "fraction": round(fraction, 4),
        "kernels": {
            name: {
                "calls": stats["calls"],
                "elements": stats["elements"],
                "seconds": round(stats["seconds"], 6),
            }
            for name, stats in sorted(kernels.items())
        },
    }
    print(
        f"  attribution  {fraction:4.0%} of {wall_s:.2f}s wall in named "
        f"kernels ({len(kernels)} kernels)"
    )
    return row


def shard_scaling(index, pool, args) -> dict:
    """Distributed kNN throughput at 1/2/4 shards, plus a failover run.

    Shards are spawned processes (each loads its partition subset from a
    persisted copy of the index), so adding shards adds real CPUs —
    in-process threads would share one GIL and show nothing.  (That
    also means the monotonic-QPS check only means something on a host
    with >= 4 schedulable cores; see the ``checks`` assembly.)  The
    workload is multi-partitions kNN: every query scatters under the
    ``pth`` cap and gathers per-shard top-k lists, which is the code
    path sharding exists to parallelize.  The failover run (2 shards,
    R=1) SIGKILLs one shard mid-run; with a replica of every partition
    alive, zero requests may fail or degrade.
    """
    import shutil
    import tempfile
    import threading

    from repro.core.persistence import save_index
    from repro.sharding import (
        RouterIndex,
        RouterService,
        ShardCluster,
        plan_shards,
    )

    sizes = {pid: p.n_records for pid, p in index.partitions.items()}
    router_index = RouterIndex.from_index(index)
    index_dir = tempfile.mkdtemp(prefix="repro-bench-shards-")
    save_index(index, index_dir)

    def run_cluster(n_shards, replication, total, kill_after_s=None):
        plan = plan_shards(sizes, n_shards, replication)
        cluster = ShardCluster(
            plan, mode="processes", index_dir=index_dir,
            service_kwargs={"result_cache_size": None},
        )
        killer = None
        try:
            cluster.start()
            with RouterService(
                router_index, plan, cluster.addresses,
                workers=8, result_cache_size=None, call_timeout_s=20.0,
            ) as router:
                closed_loop(  # warm shard partition loads and sockets
                    router, pool, total=16, concurrency=8, seed=23,
                    op="knn", strategy="multi-partitions", k=10,
                )
                if kill_after_s is not None:
                    killer = threading.Timer(
                        kill_after_s, cluster.kill_shard, args=(1,)
                    )
                    killer.start()
                report = closed_loop(
                    router, pool, total=total, concurrency=8, seed=29,
                    op="knn", strategy="multi-partitions", k=10,
                )
            return report, plan
        finally:
            if killer is not None:
                killer.cancel()
            cluster.stop()

    rows = []
    try:
        for n_shards in (1, 2, 4):
            report, plan = run_cluster(n_shards, 0, args.shard_total)
            row = {
                "scenario": "shard-scaling",
                "topology": {
                    "shards": n_shards, "replicas": 0,
                    "pth": index.config.pth,
                },
                **report.to_dict(),
            }
            rows.append(row)
            print(
                f"  shards={n_shards}  "
                f"{report.achieved_qps:8.0f} q/s  "
                f"p99 {report.percentiles()['p99_s'] * 1000:7.2f} ms  "
                f"errors {report.errors}  degraded {report.degraded}"
            )

        # Failover: time a clean 2-shard R=1 pass, then repeat it and
        # kill shard 1 partway through.
        clean, _ = run_cluster(2, 1, args.shard_total)
        kill_after_s = max(0.05, clean.duration_s * 0.4)
        failover, _ = run_cluster(
            2, 1, args.shard_total, kill_after_s=kill_after_s
        )
        failover_row = {
            "scenario": "shard-failover",
            "topology": {"shards": 2, "replicas": 1,
                         "pth": index.config.pth},
            "killed_shard": 1,
            "killed_after_s": round(kill_after_s, 3),
            **failover.to_dict(),
        }
        print(
            f"  failover   shard 1 killed at {kill_after_s:.2f}s: "
            f"{failover.completed}/{failover.sent} completed, "
            f"{failover.errors} errors, {failover.degraded} degraded"
        )
    finally:
        shutil.rmtree(index_dir, ignore_errors=True)
    return {"scaling": rows, "failover": failover_row}


def trace_overhead(index, pool, args) -> dict:
    """Distributed-tracing cost on the *sharded* path, off/sampled/full.

    The single-service overhead pass above prices span bookkeeping; this
    one prices the cluster plane the scatter/gather path adds on top —
    carrier stamping on every shard call, compact span shipping in
    replies, and router-side re-parenting (docs/OBSERVABILITY.md,
    "Distributed tracing across shards").  Three configurations over the
    identical multi-partitions workload: tracing disabled (no-op null
    spans, no carrier on the wire), sampled at 10% (the production
    default posture — only 1 in 10 traces ships shard summaries), and
    full (every trace ships).  Like the single-service pass, only the
    disabled A/B delta gates: with tracing off the sharded hot path must
    be indistinguishable from itself.
    """
    from repro.sharding import RouterIndex, RouterService, ShardCluster
    from repro.telemetry.spans import disable_tracing, enable_tracing

    router_index = RouterIndex.from_index(index)
    topology = {"shards": 2, "replicas": 0, "pth": index.config.pth}

    off_a: list[float] = []
    off_b: list[float] = []
    sampled: list[float] = []
    full: list[float] = []
    # One cluster serves every pass: cluster spin-up and first-touch
    # partition loads are far noisier than the instrumentation being
    # measured, so rebuilding per pass (as the single-service overhead
    # pass does) would drown the signal.  The sampling rate is flipped
    # on the live router between passes — it is read per call.
    with ShardCluster.for_index(
        index, topology["shards"], topology["replicas"], mode="threads",
        service_kwargs={"result_cache_size": None, "max_delay_ms": 1.0},
    ) as cluster:
        with RouterService(
            router_index, cluster.plan, cluster.addresses,
            result_cache_size=None, call_timeout_s=20.0,
            health_interval_s=0.0, trace_sample=1.0,
        ) as router:

            # Sharded passes run an order of magnitude slower than the
            # single-service ones (socket hops per scatter leg), so the
            # per-pass qps estimate is noisier: longer passes and two
            # extra repetitions buy the medians back their stability.
            total = max(args.shard_total, 320)
            reps = args.overhead_reps + 2

            def one_pass(trace_sample: float) -> float:
                router.trace_sample = trace_sample
                report = closed_loop(
                    router, pool, total=total, concurrency=8,
                    seed=37, op="knn", strategy="multi-partitions", k=10,
                )
                return report.achieved_qps

            disable_tracing()
            one_pass(1.0)  # warm partition caches and thread pools
            one_pass(1.0)
            for _ in range(reps):
                disable_tracing()
                off_a.append(one_pass(1.0))  # tracer off: no carrier
                off_b.append(one_pass(1.0))
                tracer = enable_tracing(reset=True)
                tracer.set_root_limit(64)
                sampled.append(one_pass(0.1))
                tracer = enable_tracing(reset=True)
                tracer.set_root_limit(64)
                full.append(one_pass(1.0))
            disable_tracing()

    off = off_a + off_b
    qps_off = float(np.median(off))
    qps_sampled = float(np.median(sampled))
    qps_full = float(np.median(full))
    disabled_delta_pct = (
        100.0 * abs(float(np.median(off_a)) - float(np.median(off_b)))
        / qps_off
    )
    row = {
        "scenario": "trace-overhead-sharded",
        "topology": topology,
        "reps": reps,
        "total_per_pass": total,
        "trace_sample_rate": 0.1,
        "qps_tracing_off": round(qps_off, 1),
        "qps_trace_sampled": round(qps_sampled, 1),
        "qps_trace_full": round(qps_full, 1),
        "tracing_off_reps_qps": [round(v, 1) for v in off],
        "sampled_reps_qps": [round(v, 1) for v in sampled],
        "full_reps_qps": [round(v, 1) for v in full],
        "disabled_delta_pct": round(disabled_delta_pct, 2),
        "sampled_overhead_pct": round(
            100.0 * (qps_off - qps_sampled) / qps_off, 2
        ),
        "full_overhead_pct": round(
            100.0 * (qps_off - qps_full) / qps_off, 2
        ),
    }
    print(
        f"  trace-ovh  sharded off {qps_off:8.0f} q/s  "
        f"sampled {qps_sampled:8.0f} q/s ({row['sampled_overhead_pct']:+.2f}%)  "
        f"full {qps_full:8.0f} q/s ({row['full_overhead_pct']:+.2f}%)  "
        f"disabled A/B delta {disabled_delta_pct:.2f}%"
    )
    return row


def ingest_scenarios(dataset, config, pool, args) -> dict:
    """Streaming-ingest section: append throughput, read tail latency
    at 0/10/50% write mix, and online-rebalance pause time.

    Each mix gets a *fresh* index (writes mutate), a real WAL (fsync on
    every acknowledged batch — the durability cost is part of the
    number), and the online rebalancer.  Read latencies come from the
    loadgen's segregated read histogram, so "p99 read at 10% writes"
    is directly comparable to the 0% row — the acceptance bar is that
    a modest write stream costs the read tail at most 25%.
    """
    import shutil
    import tempfile

    write_pool = (
        random_walk(max(256, args.total), length=args.length, seed=83)
        .z_normalized().values
    )
    tmp = tempfile.mkdtemp(prefix="repro-bench-ingest-")
    mixes = []
    append_row = None
    try:
        def one_mix(mix: float, write_batch: int, seed: int):
            index = build_tardis_index(dataset, config)
            wal = Path(tmp) / f"mix-{int(mix * 100)}.wal"
            with QueryService(
                index,
                queue_capacity=512,
                max_batch=args.batch,
                max_delay_ms=2.0,
                executor="threads",
                result_cache_size=None,
                wal=wal,
                rebalance=True,
                rebalance_overflow=1.5,
                rebalance_interval_s=0.05,
            ) as service:
                report = closed_loop(
                    service, pool, total=args.total, concurrency=8,
                    seed=seed, write_mix=mix, writes=write_pool,
                    write_batch=write_batch,
                    op="knn", strategy="target-node", k=10,
                )
                stats = service.stats()
            return report, stats

        for mix in (0.0, 0.1, 0.5):
            report, stats = one_mix(mix, write_batch=4, seed=41)
            doc = report.to_dict()
            row = {
                "scenario": f"mixed-{int(mix * 100)}pct-writes",
                "write_mix": mix,
                **doc,
                "read_p99_s": doc["latency"]["p99_s"],
                "rebalance": stats.get("rebalance"),
            }
            mixes.append(row)
            rebal = stats.get("rebalance") or {}
            print(
                f"  ingest mix={mix:4.0%}  reads {report.completed:4d} "
                f"p99 {doc['latency']['p99_s'] * 1000:7.2f} ms  "
                f"writes {report.writes_completed:4d} "
                f"({report.write_records} records)  "
                f"cycles {rebal.get('cycles_total', 0)} "
                f"pause<= {rebal.get('max_pause_s', 0.0) * 1000:.2f} ms"
            )

        # Pure append throughput: all-writes closed loop, bigger batches.
        report, stats = one_mix(1.0, write_batch=8, seed=43)
        rebal = stats.get("rebalance") or {}
        append_row = {
            "scenario": "append-throughput",
            "write_batch": 8,
            **report.to_dict(),
            "records_per_s": (
                report.write_records / report.duration_s
                if report.duration_s else 0.0
            ),
            "rebalance": rebal,
        }
        print(
            f"  ingest append  {append_row['records_per_s']:8.0f} rec/s  "
            f"write p99 {append_row['writes']['p99_s'] * 1000:7.2f} ms  "
            f"cycles {rebal.get('cycles_total', 0)}"
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {"mixes": mixes, "append": append_row}


def run(args) -> dict:
    dataset = random_walk(args.series, length=args.length, seed=97)
    dataset = dataset.z_normalized()
    config = TardisConfig(
        g_max_size=max(60, args.series // 16),
        l_max_size=max(10, args.series // 150),
        pth=4,
    )
    index = build_tardis_index(dataset, config)
    # Query pool with production-like reuse: mostly indexed rows (drawn
    # several times each under the seeded load RNG) plus held-out probes.
    rng = np.random.default_rng(5)
    rows = rng.choice(len(dataset), size=args.pool * 3 // 4, replace=False)
    heldout = (
        random_walk(args.pool - len(rows), length=args.length, seed=79)
        .z_normalized().values
    )
    pool = np.vstack([dataset.values[rows], heldout])
    print(
        f"index: {args.series} series, {len(index.partitions)} partitions; "
        f"query pool {len(pool)}"
    )

    # Sections run selectively (--sections) so CI jobs can gate one
    # surface — e.g. the sharded tracing-overhead check — without
    # paying for the whole suite.  Checks over a skipped section record
    # null, the same "skipped, not passed" convention as the host gate.
    on = args.sections
    closed = closed_loop_scenarios(index, pool, args) \
        if "closed" in on else []
    open_row = open_loop_scenario(index, pool, args) \
        if "open" in on else None
    overhead_row = observability_overhead(index, pool, args) \
        if "overhead" in on else None
    trace_row = trace_overhead(index, pool, args) \
        if "trace" in on else None
    attribution_row = kernel_attribution(index, pool, args) \
        if "attribution" in on else None
    sharded = shard_scaling(index, pool, args) if "shards" in on else None
    ingest_row = ingest_scenarios(dataset, config, pool, args) \
        if "ingest" in on else None

    def ratio(concurrency: int, scenario: str) -> float:
        for row in closed:
            if (row["concurrency"] == concurrency
                    and row["scenario"] == scenario):
                return row["partitions_per_query"]
        raise KeyError((concurrency, scenario))

    high = [c for c in args.concurrencies if c >= 8]
    checks = {
        "open_loop_zero_shed": (
            open_row["shed"] == 0 and open_row["errors"] == 0
        ) if open_row else None,
        "batching_reduces_partition_loads": all(
            ratio(c, "batched") < ratio(c, "unbatched") for c in high
        ) if closed else None,
        "all_queries_answered": all(
            row["completed"] == row["sent"] for row in closed
        ) if closed else None,
        "disabled_tracing_overhead_in_noise": (
            overhead_row["disabled_delta_pct"] < 3.0
        ) if overhead_row else None,
        "sharded_disabled_tracing_in_noise": (
            trace_row["disabled_delta_pct"] < 3.0
        ) if trace_row else None,
        # Shard scaling needs real cores: on a box with fewer than 4
        # schedulable CPUs, extra shard processes only add context
        # switches, so the monotonic-QPS claim is untestable there —
        # recorded as null (skipped), same spirit as bench_parallel's
        # oversubscription flag.
        "shard_qps_monotonic": (all(
            later["achieved_qps"] > earlier["achieved_qps"]
            for earlier, later in zip(
                sharded["scaling"], sharded["scaling"][1:]
            )
        ) if host_info()["cpu_affinity"] >= 4 else None)
        if sharded else None,
        "shard_p99_within_slo": all(
            row["latency"]["p99_s"] * 1000.0 <= args.slo_ms
            for row in sharded["scaling"]
        ) if sharded else None,
        "shard_failover_zero_failures": (
            sharded["failover"]["errors"] == 0
            and sharded["failover"]["shed"] == 0
            and sharded["failover"]["degraded"] == 0
            and sharded["failover"]["completed"]
            == sharded["failover"]["sent"]
        ) if sharded else None,
        "ingest_zero_write_errors": (
            all(row["writes"]["errors"] == 0 and row["errors"] == 0
                for row in ingest_row["mixes"] if row["write_mix"] > 0.0)
            and ingest_row["append"]["writes"]["errors"] == 0
        ) if ingest_row else None,
        # The acceptance bar for online rebalancing: a 10% write stream
        # (with the WAL fsyncing and the rebalancer splitting under it)
        # costs the read tail at most 25%.  A small absolute floor
        # absorbs scheduler noise when the read-only p99 is sub-ms.
        "ingest_mixed_p99_within_25pct": (
            ingest_row["mixes"][1]["read_p99_s"]
            <= max(1.25 * ingest_row["mixes"][0]["read_p99_s"],
                   ingest_row["mixes"][0]["read_p99_s"] + 0.005)
        ) if ingest_row else None,
        # Reads never block on a repack: the swap window is the only
        # gated region, so the longest observed pause stays far below
        # human-visible stall territory.
        "ingest_rebalance_pause_bounded": all(
            (row["rebalance"] or {}).get("max_pause_s", 0.0) <= 0.25
            for row in ingest_row["mixes"] + [ingest_row["append"]]
        ) if ingest_row else None,
    }
    return {
        "benchmark": "serving",
        # jobs = peak client concurrency: that is the parallelism the
        # closed-loop driver actually offers the box.
        "host": host_info(jobs=max(args.concurrencies)),
        "workload": {
            "series": args.series,
            "length": args.length,
            "partitions": len(index.partitions),
            "query_pool": len(pool),
            "total_per_scenario": args.total,
            "strategy": "target-node",
            "k": 10,
            "batch_max": args.batch,
            "batch_delay_ms": 2.0,
        },
        "sections": sorted(on),
        "closed_loop": closed,
        "open_loop": open_row,
        "observability_overhead": overhead_row,
        "trace_overhead": trace_row,
        "attribution": attribution_row,
        "shard_scaling": sharded["scaling"] if sharded else None,
        "shard_failover": sharded["failover"] if sharded else None,
        "ingest": ingest_row,
        "checks": checks,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller index and totals)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if any report check fails")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here")
    parser.add_argument("--series", type=int, default=None)
    parser.add_argument("--length", type=int, default=64)
    parser.add_argument("--pool", type=int, default=None)
    parser.add_argument("--total", type=int, default=None)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--rate", type=float, default=None,
                        help="open-loop offered rate (q/s)")
    parser.add_argument("--duration", type=float, default=None,
                        help="open-loop duration (s)")
    parser.add_argument("--shard-total", type=int, default=None,
                        help="requests per shard-scaling run")
    parser.add_argument("--slo-ms", type=float, default=500.0,
                        help="p99 bound for the shard-scaling check")
    parser.add_argument(
        "--sections",
        default="closed,open,overhead,trace,attribution,shards,ingest",
        metavar="LIST",
        help="comma list of sections to run (checks over skipped "
             "sections record null)")
    args = parser.parse_args()
    known = {"closed", "open", "overhead", "trace", "attribution",
             "shards", "ingest"}
    args.sections = {
        s.strip() for s in args.sections.split(",") if s.strip()
    }
    unknown = args.sections - known
    if unknown:
        parser.error(f"unknown sections {sorted(unknown)}; "
                     f"choose from {sorted(known)}")
    args.series = args.series or (1500 if args.smoke else 4000)
    args.pool = args.pool or (32 if args.smoke else 64)
    args.total = args.total or (240 if args.smoke else 800)
    args.rate = args.rate or (40.0 if args.smoke else 100.0)
    args.duration = args.duration or (1.5 if args.smoke else 3.0)
    args.shard_total = args.shard_total or (160 if args.smoke else 480)
    args.concurrencies = (1, 8) if args.smoke else (1, 8, 16)
    args.overhead_reps = 3 if args.smoke else 4

    started = time.perf_counter()
    report = run(args)
    report["elapsed_s"] = round(time.perf_counter() - started, 2)
    print(f"checks: {report['checks']}  ({report['elapsed_s']:.1f}s)")
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    # None = check skipped (untestable on this host); only real failures
    # gate.
    failed = [
        name for name, value in report["checks"].items() if value is False
    ]
    if args.check and failed:
        print(f"BENCH CHECK FAILED: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
