"""Technical-report figure: local index construction breakdown.

The paper's §VI-B points to its technical report for the per-stage
breakdown of *local* index construction; the text quotes the headline
numbers (TARDIS reads-and-converts 1 B series in 66 min vs the baseline's
2007 min, the gap being the per-record partition-table matching).  This
benchmark regenerates that breakdown: read, convert, shuffle/route, and
local tree build for both systems across the scaling sweep.
"""

from conftest import once, report

from repro.experiments import (
    banner,
    fmt_seconds,
    get_dpisax,
    get_tardis,
    render_table,
    save_csv,
)

STAGES = (
    ("read", "local/read data"),
    ("convert", "local/convert data"),
    ("shuffle+route", "local/shuffle"),
    ("build trees", "local/build index"),
)


def test_figTR_local_breakdown(benchmark, profile):
    rows = []
    for n in profile.scaling_sizes:
        _t, trep = get_tardis("Rw", n)
        _d, brep = get_dpisax("Rw", n)
        for system, rep in (("TARDIS", trep), ("Baseline", brep)):
            rows.append(
                [f"{n:,}", system]
                + [fmt_seconds(rep.breakdown.get(key, 0.0)) for _label, key in STAGES]
            )
    headers = ["series", "system"] + [label for label, _key in STAGES]
    report(banner("TR figure — local index construction breakdown (RandomWalk)"))
    report(render_table(headers, rows))
    save_csv("figTR_local_breakdown", headers, rows)

    # The paper's headline: the shuffle/route stage is where the baseline
    # loses, and its disadvantage grows with scale.
    largest = profile.scaling_sizes[-1]
    _t, trep = get_tardis("Rw", largest)
    _d, brep = get_dpisax("Rw", largest)
    t_route = trep.breakdown.get("local/shuffle", 0.0)
    b_route = brep.breakdown.get("local/shuffle", 0.0)
    assert b_route > 1.5 * t_route, (
        "baseline routing should dominate TARDIS routing at the top size"
    )
    # Both systems read the same bytes.
    t_read = trep.breakdown.get("local/read data", 0.0)
    b_read = brep.breakdown.get("local/read data", 0.0)
    assert abs(t_read - b_read) < 0.35 * max(t_read, b_read)
    once(benchmark, lambda: rows)
