"""Figure 12: Bloom-filter index construction overhead (RandomWalk).

The Bloom filter is encoded synchronously with Tardis-L insertion, so when
the shuffled intermediate data is persisted in memory the only extra cost
is dumping the small filters to disk — negligible.  When the data does
*not* fit (paper: beyond ~400 M series), the intermediate result must be
spilled and re-read, adding substantial I/O.  We build TARDIS three ways
(no filter / filter with in-memory persistence / filter with spill) and
print the overhead columns.
"""

from conftest import once, report

from repro.experiments import banner, fmt_bytes, fmt_seconds, render_table
from repro.experiments.harness import get_dataset_and_queries
from repro.core import build_tardis_index


def _build(dataset, with_bloom: bool, persist: bool):
    return build_tardis_index(
        dataset, with_bloom=with_bloom, persist_in_memory=persist
    )


def _bloom_overhead(index) -> float:
    """Bloom-attributable simulated time, read from the ledger stages."""
    breakdown = index.construction_ledger.breakdown()
    return sum(
        breakdown.get(stage, 0.0)
        for stage in ("local/dump bloom index", "local/spill write",
                      "local/spill read")
    )


def test_fig12_bloom_filter_construction(benchmark, profile):
    rows = []
    for n in profile.scaling_sizes:
        dataset, _ = get_dataset_and_queries("Rw", n)
        without = _build(dataset, with_bloom=False, persist=True)
        in_memory = _build(dataset, with_bloom=True, persist=True)
        spilled = _build(dataset, with_bloom=True, persist=False)
        base = without.construction_ledger.clock_s
        # Read the bloom-attributable stages from the ledgers directly
        # (instead of differencing two whole builds) so the overhead
        # columns are free of CPU measurement noise: in-memory persistence
        # only pays the filter dump; the spill scenario adds writing and
        # re-reading the shuffled intermediate data.
        mem_overhead = _bloom_overhead(in_memory)
        spill_overhead = _bloom_overhead(spilled)
        rows.append(
            [
                f"{n:,}",
                fmt_seconds(base),
                fmt_seconds(mem_overhead),
                fmt_seconds(spill_overhead),
                fmt_bytes(in_memory.bloom_nbytes()),
            ]
        )
        # Paper shape: spilling costs strictly more than in-memory.
        assert spill_overhead > mem_overhead
    report(banner("Figure 12 — Bloom filter construction overhead (RandomWalk)"))
    report(
        render_table(
            ["series", "no-BF build", "BF overhead (in-mem)",
             "BF overhead (spilled)", "BF index size"],
            rows,
        )
    )
    dataset, _ = get_dataset_and_queries("Rw", profile.scaling_sizes[0])
    once(benchmark, lambda: _build(dataset, True, True))
