"""Ablation: iSAX-family indexing vs locality-sensitive hashing.

The paper measures search quality with the LSH literature's metrics but
never compares against LSH itself.  This ablation runs E2LSH beside the
paper's four methods on the SIFT-like dataset (LSH's home turf) and
RandomWalk, on one cost currency: LSH answers from scattered candidate
ids and pays one random read per candidate, while the clustered iSAX
methods stream whole blocks.
"""

import numpy as np
from conftest import once, report

from repro.core import brute_force_knn
from repro.experiments import (
    banner,
    evaluate_knn,
    fmt_seconds,
    get_dataset_and_queries,
    get_dpisax,
    get_tardis,
    render_table,
    save_csv,
)
from repro.lsh import LshConfig, build_lsh_index
from repro.metrics import mean, recall

#: Bucket widths tuned per series length (near-neighbor distance scales
#: with sqrt(n)).
WIDTHS = {"Rw": 24.0, "Tx": 18.0}


def test_ablation_lsh_comparison(benchmark, profile):
    k = profile.default_k
    rows = []
    lsh_recall = {}
    for key in ("Rw", "Tx"):
        dataset, queries = get_dataset_and_queries(key, profile.dataset_size)
        queries = queries[: profile.n_knn_queries]
        tardis, _ = get_tardis(key, profile.dataset_size)
        dpisax, _ = get_dpisax(key, profile.dataset_size)
        reports = evaluate_knn(dataset, queries, k, tardis=tardis,
                               dpisax=dpisax)
        for r in reports:
            rows.append(
                [dataset.name, r.method, f"{r.recall:.1%}",
                 fmt_seconds(r.avg_time_s), f"{r.avg_candidates:,.0f}"]
            )
        for label, probes in (("e2lsh", 0), ("e2lsh multi-probe", 4)):
            lsh = build_lsh_index(
                dataset,
                LshConfig(bucket_width=WIDTHS[key], probes_per_table=probes),
            )
            recalls, times, cands = [], [], []
            for q in queries:
                truth = [n.record_id for n in brute_force_knn(dataset, q, k)]
                result = lsh.knn(q, k)
                recalls.append(recall(result.record_ids, truth))
                times.append(result.simulated_seconds)
                cands.append(result.candidates_examined)
            lsh_recall[(key, label)] = mean(recalls)
            rows.append(
                [dataset.name, label, f"{mean(recalls):.1%}",
                 fmt_seconds(mean(times)), f"{mean(cands):,.0f}"]
            )
    headers = ["dataset", "method", "recall", "avg time", "avg candidates"]
    report(banner(f"Ablation — iSAX family vs E2LSH (k={k})"))
    report(render_table(headers, rows))
    save_csv("ablation_lsh_comparison", headers, rows)

    # LSH is a competitive approximate method when tuned — it must land
    # in the same quality regime as the TARDIS strategies, not collapse —
    # and multi-probe must lift recall over the base scheme (Lv et al.).
    assert lsh_recall[("Rw", "e2lsh")] > 0.05
    assert (
        lsh_recall[("Rw", "e2lsh multi-probe")]
        >= lsh_recall[("Rw", "e2lsh")]
    )
    once(benchmark, lambda: rows)
