"""Extension study: concurrent-workload throughput per kNN strategy.

Not a paper figure — the paper measures single-query latency only.  Under
concurrency the strategies separate differently: Multi-Partitions Access
occupies up to ``pth`` workers per query, so its throughput advantage
narrows (or inverts) relative to its single-query latency story, while
Target-Node queries pack one per worker.  This is the accuracy/throughput
frontier an operator actually tunes.
"""

from conftest import once, report

from repro.experiments import banner, get_dataset_and_queries, get_tardis, render_table, save_csv
from repro.experiments.throughput import STRATEGY_TASKS, simulate_workload


def test_throughput_by_strategy(benchmark, profile):
    tardis, _tr = get_tardis("Rw", profile.dataset_size)
    _dataset, queries = get_dataset_and_queries("Rw", profile.dataset_size)
    workload = list(queries[: profile.n_knn_queries]) * 4  # a busier stream

    results = [
        simulate_workload(tardis, workload, fn, name, k=profile.default_k)
        for name, fn in STRATEGY_TASKS().items()
    ]
    headers = ["strategy", "queries", "workers", "makespan",
               "throughput", "mean latency", "p95 latency"]
    rows = [r.row() for r in results]
    report(banner(f"Extension — concurrent workload throughput "
                  f"(k={profile.default_k}, {len(workload)} queries)"))
    report(render_table(headers, rows))
    save_csv("ext_throughput_by_strategy", headers, rows)

    by_name = {r.strategy: r for r in results}
    # MPA does strictly more work per query, so the batch takes longer...
    assert (
        by_name["multi-partitions"].makespan_s
        > by_name["target-node"].makespan_s
    )
    # ...but parallelism keeps its throughput within a small factor of its
    # partitions-touched count (i.e. the cluster is actually utilized).
    ratio = (
        by_name["target-node"].throughput_qps
        / by_name["multi-partitions"].throughput_qps
    )
    assert ratio < tardis.config.pth, (
        "MPA throughput should not degrade by its full fan-out"
    )
    once(benchmark, lambda: rows)
