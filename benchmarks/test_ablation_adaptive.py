"""Ablation: up-front (TARDIS) vs adaptive (ADS) index construction.

The paper's related work (§VII) positions TARDIS against ADS, which
defers index refinement to query time.  This ablation quantifies the
trade on one cost currency: ADS construction is near-free, but its early
queries pay for splitting and materialization; TARDIS pays everything up
front and serves every query at steady-state cost.  We report the
construction costs, the ADS warm-up curve, and the break-even query count
(where TARDIS's construction + queries become cheaper than ADS's total).
"""

import numpy as np
from conftest import once, report

from repro.adaptive import AdsConfig, build_ads_index
from repro.experiments import (
    banner,
    exact_match_workload,
    fmt_seconds,
    get_dataset_and_queries,
    get_tardis,
    render_table,
)
from repro.core import exact_match


def test_ablation_adaptive_vs_upfront(benchmark, profile):
    dataset, _ = get_dataset_and_queries("Rw", profile.dataset_size)
    tardis, trep = get_tardis("Rw", profile.dataset_size)
    ads = build_ads_index(dataset, AdsConfig(leaf_threshold=50))

    workload = exact_match_workload(dataset, 200, absent_fraction=0.0, seed=9)
    ads_times, tardis_times = [], []
    for query in workload:
        ads_times.append(ads.exact_match(query.values).simulated_seconds)
        tardis_times.append(
            exact_match(tardis, query.values).simulated_seconds
        )

    ads_build = ads.construction_ledger.clock_s
    tardis_build = trep.total_s
    # Break-even: smallest q where TARDIS total <= ADS total.
    ads_cum = ads_build + np.cumsum(ads_times)
    tardis_cum = tardis_build + np.cumsum(tardis_times)
    crossover = next(
        (q + 1 for q in range(len(workload)) if tardis_cum[q] <= ads_cum[q]),
        None,
    )

    def window(times, lo, hi):
        return fmt_seconds(float(np.mean(times[lo:hi])))

    report(banner("Ablation — adaptive (ADS) vs up-front (TARDIS) indexing"))
    report(
        render_table(
            ["metric", "ADS (adaptive)", "TARDIS (up-front)"],
            [
                ["construction", fmt_seconds(ads_build), fmt_seconds(tardis_build)],
                ["avg query 1-20", window(ads_times, 0, 20),
                 window(tardis_times, 0, 20)],
                ["avg query 181-200", window(ads_times, 180, 200),
                 window(tardis_times, 180, 200)],
                ["materialized fraction", f"{ads.materialized_fraction():.1%}",
                 "100% (clustered)"],
                ["break-even query count",
                 str(crossover) if crossover else ">200", "—"],
            ],
        )
    )
    # ADS builds (much) faster...  (Its per-query costs also come out
    # lower here because centralized ADS reads leaf-sized slices while the
    # distributed systems read whole storage blocks — fine-grained I/O is
    # exactly what a single machine can do and a block store cannot.)
    assert ads_build < tardis_build / 3
    # ...but its early queries are costlier than its own steady state.
    assert float(np.mean(ads_times[:20])) > float(np.mean(ads_times[-20:]))
    once(benchmark, lambda: crossover)
