"""Counter/gauge/histogram semantics and registry behaviour."""

import threading

import pytest

from repro.telemetry.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0

    def test_reset(self):
        c = Counter("requests_total")
        c.inc(9)
        c.reset()
        assert c.value == 0.0

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name with spaces")
        with pytest.raises(ValueError):
            Counter("0starts_with_digit")

    def test_concurrent_increments_all_land(self):
        c = Counter("contended_total")
        threads = [
            threading.Thread(
                target=lambda: [c.inc() for _ in range(1000)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("cache_resident")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0

    def test_can_go_negative(self):
        g = Gauge("delta")
        g.dec(2)
        assert g.value == -2.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        cumulative = h.cumulative_buckets()
        assert cumulative == [
            (0.1, 1), (1.0, 3), (10.0, 4), (float("inf"), 5)
        ]

    def test_boundary_value_goes_to_lower_bucket(self):
        h = Histogram("edge_seconds", buckets=(1.0, 2.0))
        h.observe(1.0)  # le semantics: inclusive upper bound
        assert h.cumulative_buckets()[0] == (1.0, 1)

    def test_buckets_sorted_and_deduped(self):
        h = Histogram("sorted_seconds", buckets=(5.0, 1.0, 2.0))
        assert h.bounds == (1.0, 2.0, 5.0)
        with pytest.raises(ValueError):
            Histogram("dup_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("empty_seconds", buckets=())

    def test_default_buckets_cover_query_and_build_scales(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 300

    def test_reset_zeroes_everything(self):
        h = Histogram("reset_seconds", buckets=(1.0,))
        h.observe(0.5)
        h.reset()
        assert h.count == 0
        assert h.sum == 0.0
        assert h.cumulative_buckets() == [(1.0, 0), (float("inf"), 0)]


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", "help text")
        b = reg.counter("hits_total", "different help ignored")
        assert a is b
        assert a.help == "help text"

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("thing")

    def test_instruments_in_creation_order(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.gauge("a_gauge")
        reg.histogram("m_seconds")
        assert [i.name for i in reg.instruments()] == [
            "z_total", "a_gauge", "m_seconds"
        ]

    def test_get_returns_none_for_unknown(self):
        assert MetricsRegistry().get("nope") is None

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("kept_total").inc(4)
        reg.reset()
        assert reg.get("kept_total") is not None
        assert reg.counter("kept_total").value == 0.0

    def test_clear_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("gone_total")
        reg.clear()
        assert reg.instruments() == []

    def test_shared_registry_is_singleton(self):
        assert get_registry() is get_registry()
