"""Merged cluster journal: provenance tagging, ordering, validation.

The router drains every shard's journal over the ``telemetry`` wire op
and folds the set — plus its own — into one timeline.  The merge must
(a) preserve where each record came from and which shard it is about,
(b) stay byte-stable under re-merge, and (c) still satisfy the
``repro.journal/v1`` validator, header included.
"""

import json

import pytest

from repro.telemetry.journal import (
    EventJournal,
    merge_journal_events,
    validate_journal_header,
    validate_journal_lines,
    validate_journal_record,
    write_merged_journal,
)


def _journal_events(kinds, ts_start=100.0, **fields):
    journal = EventJournal(capacity=64)
    for i, kind in enumerate(kinds):
        journal.record(kind, **fields)
    events = journal.snapshot()
    for i, event in enumerate(events):
        event["ts"] = ts_start + i  # deterministic cross-source ordering
    return events


class TestMergeJournalEvents:
    def test_provenance_tagging(self):
        merged = merge_journal_events({
            "router": _journal_events(["shed"], ts_start=100.0),
            0: _journal_events(["slow-query"], ts_start=50.0),
        })
        assert [r["source"] for r in merged] == ["shard-0", "router"]
        shard_record = merged[0]
        assert shard_record["shard_id"] == 0
        assert shard_record["src_seq"] == 1

    def test_router_failover_keeps_named_shard(self):
        """A router-recorded failover is *about* a shard: the merge must
        not overwrite that shard id with router provenance."""
        journal = EventJournal(capacity=8)
        journal.record("failover", shard_id=2, op="shard-knn",
                       reason="connection reset", attempt=1)
        merged = merge_journal_events({"router": journal.snapshot()})
        assert merged[0]["source"] == "router"
        assert merged[0]["shard_id"] == 2

    def test_sorted_by_ts_and_restamped_monotone(self):
        merged = merge_journal_events({
            0: _journal_events(["a", "b"], ts_start=10.0),
            1: _journal_events(["c", "d"], ts_start=9.5),
        })
        assert [r["seq"] for r in merged] == [1, 2, 3, 4]
        assert [r["ts"] for r in merged] == sorted(r["ts"] for r in merged)

    def test_remerge_is_byte_stable(self):
        sources = {
            "router": _journal_events(["x", "y"], ts_start=5.0),
            3: _journal_events(["z"], ts_start=5.0),  # ts tie with router
        }
        first = merge_journal_events(
            {k: [dict(e) for e in v] for k, v in sources.items()}
        )
        second = merge_journal_events(
            {k: [dict(e) for e in v] for k, v in sources.items()}
        )
        assert json.dumps(first) == json.dumps(second)

    def test_every_merged_record_validates(self):
        merged = merge_journal_events({
            "router": _journal_events(["shed"]),
            1: _journal_events(["slow-query", "slow-query"],
                               latency_s=0.2),
        })
        for record in merged:
            validate_journal_record(record)


class TestWriteMergedJournal:
    def test_written_dump_passes_validator(self, tmp_path):
        path = tmp_path / "cluster.jsonl"
        write_merged_journal(path, {
            "router": _journal_events(["shed"]),
            0: _journal_events(["slow-query"], latency_s=0.3),
            1: [],
        })
        text = path.read_text()
        assert validate_journal_lines(text) == 2
        header = json.loads(text.splitlines()[0])
        assert header["sources"] == ["router", "shard-0", "shard-1"]

    def test_header_sums_ring_accounting(self, tmp_path):
        path = tmp_path / "cluster.jsonl"
        stats = {
            "router": {"capacity": 100, "total": 150, "retained": 100},
            0: {"capacity": 50, "total": 50, "retained": 50},
        }
        write_merged_journal(path, {
            "router": _journal_events(["a"]),
            0: _journal_events(["b"]),
        }, stats)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["capacity"] == 150
        assert header["total"] == 200
        assert header["dropped"] == 200 - header["retained"]
        validate_journal_header(header)


class TestValidatorExtensions:
    def _base(self, **extra):
        record = {"seq": 1, "ts": 1.0, "kind": "failover", "shard_id": 0}
        record.update(extra)
        return record

    def test_failover_requires_shard_id(self):
        record = self._base()
        del record["shard_id"]
        with pytest.raises(ValueError, match="shard_id"):
            validate_journal_record(record)

    @pytest.mark.parametrize("bad", [-1, "0", 1.5, True])
    def test_shard_id_must_be_nonnegative_int(self, bad):
        with pytest.raises(ValueError):
            validate_journal_record(self._base(shard_id=bad))

    def test_source_must_be_nonempty_string(self):
        validate_journal_record(self._base(source="shard-0"))
        with pytest.raises(ValueError):
            validate_journal_record(self._base(source=""))
        with pytest.raises(ValueError):
            validate_journal_record(self._base(source=7))

    def test_header_sources_must_be_nonempty_strings(self):
        header = {"schema": "repro.journal/v1", "capacity": 1,
                  "retained": 0, "total": 0, "dropped": 0,
                  "sources": ["router", ""]}
        with pytest.raises(ValueError):
            validate_journal_header(header)
