"""Event journal: ring-buffer semantics, slow-query log, validators."""

import json

import pytest

from repro.telemetry.journal import (
    JOURNAL_SCHEMA,
    EventJournal,
    SlowQueryLog,
    validate_journal_header,
    validate_journal_lines,
    validate_journal_record,
    write_journal,
)


class TestEventJournal:
    def test_records_are_stamped_and_ordered(self):
        journal = EventJournal(capacity=16)
        journal.record("batch", n_queries=3)
        journal.record("shed", op="knn")
        records = journal.snapshot()
        assert [r["kind"] for r in records] == ["batch", "shed"]
        assert records[0]["seq"] == 1 and records[1]["seq"] == 2
        assert records[0]["ts"] > 0
        assert records[0]["n_queries"] == 3

    def test_ring_drops_oldest(self):
        journal = EventJournal(capacity=4)
        for i in range(10):
            journal.record("batch", i=i)
        stats = journal.stats()
        assert stats["capacity"] == 4
        assert stats["retained"] == 4
        assert stats["total"] == 10
        assert stats["dropped"] == 6
        assert [r["i"] for r in journal.snapshot()] == [6, 7, 8, 9]
        # seq keeps climbing across drops
        assert journal.snapshot()[-1]["seq"] == 10

    def test_tail_and_kind_filter(self):
        journal = EventJournal(capacity=32)
        for i in range(6):
            journal.record("batch" if i % 2 == 0 else "slow-query", i=i)
        assert [r["i"] for r in journal.tail(2)] == [4, 5]
        slow = journal.tail(10, kind="slow-query")
        assert [r["i"] for r in slow] == [1, 3, 5]
        assert journal.stats()["by_kind"]["slow-query"] == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)

    def test_clear(self):
        journal = EventJournal(capacity=8)
        journal.record("batch")
        journal.clear()
        assert journal.snapshot() == []
        assert journal.stats()["retained"] == 0


class TestSlowQueryLog:
    def test_threshold_classification(self):
        journal = EventJournal(capacity=32)
        log = SlowQueryLog(threshold_s=0.1, sample_rate=0.0, journal=journal)
        log.observe(0.25, trace_id="a" * 16, op="knn", partitions=[1, 2])
        log.observe(0.01, trace_id="b" * 16, op="knn", partitions=[1])
        records = journal.snapshot()
        assert len(records) == 1
        assert records[0]["kind"] == "slow-query"
        assert records[0]["latency_s"] == 0.25
        assert records[0]["trace_id"] == "a" * 16
        assert records[0]["partitions"] == [1, 2]

    def test_sampling_is_seeded_and_bounded(self):
        journal = EventJournal(capacity=4096)
        log = SlowQueryLog(
            threshold_s=10.0, sample_rate=0.5, journal=journal, seed=7
        )
        for _ in range(1000):
            log.observe(0.001)
        sampled = len(journal.snapshot())
        assert 350 < sampled < 650  # seeded Bernoulli(0.5)
        assert all(
            r["kind"] == "query-sample" for r in journal.snapshot()
        )
        # Same seed → same decisions.
        journal2 = EventJournal(capacity=4096)
        log2 = SlowQueryLog(
            threshold_s=10.0, sample_rate=0.5, journal=journal2, seed=7
        )
        for _ in range(1000):
            log2.observe(0.001)
        assert len(journal2.snapshot()) == sampled

    def test_threshold_wins_over_sampling(self):
        journal = EventJournal(capacity=32)
        log = SlowQueryLog(
            threshold_s=0.1, sample_rate=1.0, journal=journal
        )
        log.observe(0.5)
        assert journal.snapshot()[0]["kind"] == "slow-query"

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(sample_rate=1.5)


class TestValidators:
    def test_round_trip_through_file(self, tmp_path):
        journal = EventJournal(capacity=32)
        log = SlowQueryLog(threshold_s=0.0, journal=journal)
        log.observe(0.02, trace_id="c" * 16, op="exact-match",
                    partitions=[0])
        journal.record("batch", n_queries=2, n_groups=1)
        path = write_journal(journal, tmp_path / "journal.jsonl")
        lines = path.read_text().splitlines()
        assert validate_journal_lines(path.read_text()) == 2
        header = json.loads(lines[0])
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["retained"] == 2 and header["dropped"] == 0
        validate_journal_header(header)
        for line in lines[1:]:
            validate_journal_record(json.loads(line))

    def test_header_reports_dropped_events(self, tmp_path):
        journal = EventJournal(capacity=4)
        for i in range(10):
            journal.record("batch", i=i)
        path = write_journal(journal, tmp_path / "journal.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["total"] == 10
        assert header["retained"] == 4
        assert header["dropped"] == 6
        # The dump remains valid: header + 4 records.
        assert validate_journal_lines(path.read_text()) == 4

    def test_headerless_dump_stays_valid(self):
        lines = "\n".join([
            json.dumps({"seq": 1, "ts": 1.0, "kind": "batch"}),
            json.dumps({"seq": 2, "ts": 1.0, "kind": "batch"}),
        ])
        assert validate_journal_lines(lines) == 2

    def test_header_retained_mismatch_rejected(self):
        lines = "\n".join([
            json.dumps({
                "schema": JOURNAL_SCHEMA, "capacity": 8,
                "retained": 3, "total": 3, "dropped": 0,
            }),
            json.dumps({"seq": 1, "ts": 1.0, "kind": "batch"}),
        ])
        with pytest.raises(ValueError, match="retained"):
            validate_journal_lines(lines)

    def test_header_accounting_mismatch_rejected(self):
        with pytest.raises(ValueError, match="accounting"):
            validate_journal_header({
                "schema": JOURNAL_SCHEMA, "capacity": 8,
                "retained": 2, "total": 5, "dropped": 1,
            })

    def test_rejects_malformed_records(self):
        with pytest.raises(ValueError):
            validate_journal_record({"seq": 1, "ts": 1.0})  # no kind
        with pytest.raises(ValueError):
            validate_journal_record(
                {"seq": 0, "ts": 1.0, "kind": "batch"}  # seq < 1
            )
        with pytest.raises(ValueError):
            validate_journal_record(
                {"seq": 1, "ts": 1.0, "kind": "slow-query"}  # no latency
            )
        with pytest.raises(ValueError):
            validate_journal_record({
                "seq": 1, "ts": 1.0, "kind": "slow-query",
                "latency_s": 0.1, "partitions": "not-a-list",
            })

    def test_rejects_non_monotone_seq(self):
        lines = "\n".join([
            json.dumps({"seq": 2, "ts": 1.0, "kind": "batch"}),
            json.dumps({"seq": 1, "ts": 1.0, "kind": "batch"}),
        ])
        with pytest.raises(ValueError):
            validate_journal_lines(lines)

    def test_rejects_invalid_json_line(self):
        with pytest.raises(ValueError):
            validate_journal_lines("{not json}")
