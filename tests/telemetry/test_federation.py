"""Histogram merge losslessness and registry federation semantics.

The cluster p50/p95/p99 claim rests on one property: merging per-shard
bucket histograms and *then* taking quantiles must equal taking
quantiles of the concatenated sample stream (within bucket resolution —
bucketing is the only information loss, and merging adds none).  The
hypothesis tests below pin exactly that, plus the exact count/sum
preservation that makes merged ``_sum``/``_count`` series honest.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.exporters import validate_metrics_text
from repro.telemetry.federation import (
    federated_percentiles,
    federated_quantile,
    federation_to_text,
    histogram_from_wire,
    merge_registry_wires,
)
from repro.telemetry.metrics import Histogram, MetricsRegistry

BOUNDS = tuple(0.001 * (2 ** i) for i in range(12))


def _hist(samples, name="h"):
    hist = Histogram(name, buckets=BOUNDS)
    for s in samples:
        hist.observe(s)
    return hist


samples_strategy = st.lists(
    st.floats(min_value=1e-5, max_value=5.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60,
)


class TestHistogramMerge:
    def test_type_and_bounds_guards(self):
        hist = _hist([0.01])
        with pytest.raises(TypeError):
            hist.merge({"kind": "histogram"})
        other = Histogram("h", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            hist.merge(other)

    def test_merge_adds_buckets_sum_count(self):
        a = _hist([0.001, 0.5, 3.0])
        b = _hist([0.002, 0.5])
        a.merge(b)
        assert a._count == 5
        assert a._sum == pytest.approx(0.001 + 0.5 + 3.0 + 0.002 + 0.5)
        direct = _hist([0.001, 0.5, 3.0, 0.002, 0.5])
        assert a.bucket_counts() == direct.bucket_counts()

    @settings(max_examples=50, deadline=None)
    @given(shards=st.lists(samples_strategy, min_size=2, max_size=4))
    def test_merged_equals_concatenated_exactly(self, shards):
        """Merging shard histograms is *lossless*: the merged state is
        bit-identical to observing every sample into one histogram, so
        merged quantiles == concatenated-sample quantiles by
        construction (no tolerance needed at the bucket level)."""
        merged = _hist(shards[0])
        for shard_samples in shards[1:]:
            merged.merge(_hist(shard_samples))
        concatenated = _hist([s for chunk in shards for s in chunk])
        assert merged.bucket_counts() == concatenated.bucket_counts()
        assert merged._count == concatenated._count
        assert merged._sum == pytest.approx(concatenated._sum)
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == concatenated.quantile(q)

    @settings(max_examples=30, deadline=None)
    @given(shards=st.lists(samples_strategy, min_size=2, max_size=4))
    def test_merged_quantile_within_one_bucket_of_raw(self, shards):
        """Acceptance-bar property: the cluster percentile read off
        merged buckets sits within one log-bucket width of the true
        percentile of the raw concatenated samples."""
        raw = np.array([s for chunk in shards for s in chunk])
        wires = {
            i: {"shard_request_seconds": _registry_wire(chunk)}
            for i, chunk in enumerate(shards)
        }
        merged = merge_registry_wires(wires)["shard_request_seconds"]
        for q in (0.5, 0.95):
            estimate = federated_quantile(merged, q)
            # nearest-rank on the raw samples — the same order statistic
            # the bucket estimator targets (linear interpolation is a
            # different estimator and can land a bucket away)
            true = float(np.quantile(raw, q, method="inverted_cdf"))
            lo, hi = _bucket_of(true)
            assert lo <= estimate <= hi

    def test_merge_does_not_mutate_other(self):
        a = _hist([0.01])
        b = _hist([0.02, 0.03])
        before = b.bucket_counts()
        a.merge(b)
        assert b.bucket_counts() == before


def _registry_wire(samples):
    return {
        "kind": "histogram", "help": "", "bounds": list(BOUNDS),
        "buckets": _hist(samples).bucket_counts(),
        "sum": float(sum(samples)), "count": len(samples),
    }


def _bucket_of(value):
    """[lower, upper] bounds of the bucket ``value`` falls in."""
    lower = 0.0
    for bound in BOUNDS:
        if value <= bound:
            return lower, bound
        lower = bound
    return lower, math.inf


class TestRegistryFederation:
    def _wires(self):
        wires = {}
        for shard in (0, 1, 2):
            registry = MetricsRegistry()
            registry.counter("requests_total", "calls").inc(10 * (shard + 1))
            registry.gauge("queue_depth", "queued").set(shard)
            registry.histogram(
                "latency_seconds", "latency", buckets=BOUNDS
            ).observe(0.01 * (shard + 1))
            wires[shard] = registry.to_wire()
        return wires

    def test_counters_sum_with_breakdown(self):
        merged = merge_registry_wires(self._wires())
        counter = merged["requests_total"]
        assert counter["value"] == 60.0
        assert counter["by_shard"] == {"0": 10.0, "1": 20.0, "2": 30.0}

    def test_gauges_keep_per_shard_values(self):
        merged = merge_registry_wires(self._wires())
        gauge = merged["queue_depth"]
        assert "value" not in gauge
        assert gauge["by_shard"] == {"0": 0.0, "1": 1.0, "2": 2.0}

    def test_histograms_merge_buckets(self):
        merged = merge_registry_wires(self._wires())
        hist = merged["latency_seconds"]
        assert hist["count"] == 3
        assert hist["by_shard_count"] == {"0": 1, "1": 1, "2": 1}
        assert sum(hist["buckets"]) == 3

    def test_bounds_mismatch_is_skipped_not_corrupted(self):
        wires = self._wires()
        wires[9] = {"latency_seconds": {
            "kind": "histogram", "help": "", "bounds": [0.1, 1.0],
            "buckets": [5, 5, 5], "sum": 1.0, "count": 15,
        }}
        merged = merge_registry_wires(wires)
        hist = merged["latency_seconds"]
        assert hist["count"] == 3  # the skewed shard contributed nothing
        assert hist["skipped_shards"] == ["9"]

    def test_exposition_text_validates(self):
        merged = merge_registry_wires(self._wires())
        text = federation_to_text(merged)
        assert validate_metrics_text(text) > 0
        assert 'queue_depth{shard="1"} 1' in text

    def test_histogram_from_wire_round_trip(self):
        wire = _registry_wire([0.01, 0.5, 0.5])
        hist = histogram_from_wire(wire, "latency")
        assert hist._count == 3
        assert hist.bucket_counts() == wire["buckets"]

    def test_federated_percentiles_shape(self):
        merged = merge_registry_wires(self._wires())
        report = federated_percentiles(merged["latency_seconds"])
        assert set(report) == {"p50_s", "p95_s", "p99_s", "samples"}
        assert report["samples"] == 3
