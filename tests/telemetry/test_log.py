"""Logging configuration: verbosity mapping and handler idempotency."""

import io
import logging

import pytest

from repro.telemetry import log


@pytest.fixture(autouse=True)
def restore_repro_logger():
    """Leave the shared 'repro' logger the way we found it."""
    logger = logging.getLogger(log.LOGGER_NAME)
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers[:], logger.level, logger.propagate = (
        saved[0], saved[1], saved[2]
    )
    log._handler = None


def test_verbosity_mapping():
    assert log.verbosity_to_level(-5) == logging.WARNING
    assert log.verbosity_to_level(-1) == logging.WARNING
    assert log.verbosity_to_level(0) == logging.INFO
    assert log.verbosity_to_level(1) == logging.DEBUG
    assert log.verbosity_to_level(3) == logging.DEBUG


def test_configure_installs_single_handler():
    stream = io.StringIO()
    logger = log.configure(verbosity=0, stream=stream)
    assert logger.name == log.LOGGER_NAME
    assert logger.level == logging.INFO
    n_before = len(logger.handlers)
    # Repeated calls (one per CLI invocation in-process) must not stack.
    log.configure(verbosity=1, stream=stream)
    log.configure(verbosity=-1, stream=stream)
    assert len(logger.handlers) == n_before
    assert logger.level == logging.WARNING


def test_child_loggers_flow_through(capsys):
    stream = io.StringIO()
    log.configure(verbosity=1, stream=stream)
    logging.getLogger("repro.core.builder").debug("descending")
    assert "DEBUG repro.core.builder: descending" in stream.getvalue()
    # Nothing leaks to stderr: the managed handler owns the record.
    assert capsys.readouterr().err == ""


def test_quiet_suppresses_info():
    stream = io.StringIO()
    log.configure(verbosity=-1, stream=stream)
    logging.getLogger("repro.core.queries").info("chatty")
    logging.getLogger("repro.core.queries").warning("important")
    out = stream.getvalue()
    assert "chatty" not in out
    assert "important" in out


def test_explicit_level_overrides_verbosity():
    stream = io.StringIO()
    logger = log.configure(verbosity=2, stream=stream, level=logging.ERROR)
    assert logger.level == logging.ERROR
