"""Exporter round-trips: trace JSON schema and Prometheus text."""

import json
import math

import pytest

from repro.telemetry.exporters import (
    TRACE_SCHEMA,
    aggregate_spans,
    metrics_to_text,
    summarize_trace,
    trace_to_dict,
    validate_metrics_text,
    validate_trace,
    write_metrics,
    write_trace,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer


def make_tracer() -> Tracer:
    tracer = Tracer(enabled=True)
    with tracer.span("query/knn", strategy="tna", k=5) as root:
        root.set("simulated_s", 0.25)
        with tracer.span("query/route"):
            pass
        with tracer.span("query/load partition") as load:
            load.set("simulated_s", 0.2)
    with tracer.span("query/knn") as second:
        second.set("simulated_s", 0.05)
    return tracer


class TestTraceJson:
    def test_document_shape(self):
        doc = trace_to_dict(make_tracer())
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["generated_by"].startswith("repro ")
        assert len(doc["spans"]) == 2
        root = doc["spans"][0]
        assert root["name"] == "query/knn"
        assert root["attributes"]["strategy"] == "tna"
        assert [c["name"] for c in root["children"]] == [
            "query/route", "query/load partition"
        ]

    def test_validate_counts_all_spans(self):
        doc = trace_to_dict(make_tracer())
        assert validate_trace(doc) == 4

    def test_write_round_trips(self, tmp_path):
        path = write_trace(make_tracer(), tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert validate_trace(doc) == 4

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.update(schema="nope"), "unexpected schema"),
            (lambda d: d.update(spans={}), "'spans' must be a list"),
            (
                lambda d: d["spans"][0].pop("name"),
                "name must be a non-empty string",
            ),
            (
                lambda d: d["spans"][0].update(duration_s=-1),
                "duration_s",
            ),
            (
                lambda d: d["spans"][0].update(children="x"),
                "children must be a list",
            ),
            (
                lambda d: d["spans"][0].update(attributes=[1]),
                "attributes must be an object",
            ),
        ],
    )
    def test_validate_rejects_malformed(self, mutate, message):
        doc = trace_to_dict(make_tracer())
        mutate(doc)
        with pytest.raises(ValueError, match=message):
            validate_trace(doc)

    def test_validate_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_trace([])


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("queries_total", "Queries executed").inc(7)
    reg.gauge("cache_resident", "Partitions resident").set(3)
    hist = reg.histogram(
        "query_seconds", "Simulated latency", buckets=(0.1, 1.0)
    )
    for v in (0.05, 0.5, 5.0):
        hist.observe(v)
    return reg


class TestPrometheusText:
    def test_text_format(self):
        text = metrics_to_text(make_registry())
        assert "# HELP queries_total Queries executed" in text
        assert "# TYPE queries_total counter" in text
        assert "\nqueries_total 7\n" in text
        assert "# TYPE cache_resident gauge" in text
        assert "cache_resident 3" in text
        assert '\nquery_seconds_bucket{le="0.1"} 1\n' in text
        assert '\nquery_seconds_bucket{le="1"} 2\n' in text
        assert '\nquery_seconds_bucket{le="+Inf"} 3\n' in text
        assert "query_seconds_sum 5.55" in text
        assert text.rstrip().endswith("query_seconds_count 3")

    def test_empty_registry_renders_empty(self):
        assert metrics_to_text(MetricsRegistry()) == ""

    def test_help_newlines_escaped(self):
        reg = MetricsRegistry()
        reg.counter("multi_total", "line one\nline two")
        text = metrics_to_text(reg)
        assert "line one\\nline two" in text

    def test_validate_accepts_own_output(self):
        text = metrics_to_text(make_registry())
        # 1 counter + 1 gauge + 3 buckets + _sum + _count
        assert validate_metrics_text(text) == 7

    def test_write_round_trips(self, tmp_path):
        path = write_metrics(make_registry(), tmp_path / "m.prom")
        assert validate_metrics_text(path.read_text()) == 7

    @pytest.mark.parametrize(
        "text, message",
        [
            ("queries_total 7\n", "has no TYPE"),
            ("# TYPE x mystery\nx 1\n", "malformed TYPE"),
            ("# TYPE x counter\nx\n", "expected 'name value'"),
            ("# TYPE x counter\nx abc\n", "bad value"),
            (
                '# TYPE h histogram\nh_bucket{le="1"} 2\n'
                'h_bucket{le="0.5"} 3\n',
                "bounds must increase",
            ),
            (
                '# TYPE h histogram\nh_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 3\n',
                "cumulative",
            ),
            (
                '# TYPE h histogram\nh_bucket{le="+Inf"} 3\nh_count 5\n',
                "!= _count",
            ),
            ('# TYPE h histogram\nh_bucket{x="1"} 1\n', "without le"),
            ("# TYPE x counter\nx{le=\"1\" 1\n", "unclosed label"),
        ],
    )
    def test_validate_rejects_malformed(self, text, message):
        with pytest.raises(ValueError, match=message):
            validate_metrics_text(text)


class TestSummaries:
    def test_aggregate_spans_sums_per_name(self):
        tracer = make_tracer()
        summary = aggregate_spans(tracer.roots)
        assert summary["query/knn"]["count"] == 2
        assert summary["query/knn"]["simulated_s"] == pytest.approx(0.3)
        assert summary["query/load partition"]["simulated_s"] == pytest.approx(0.2)
        assert summary["query/route"]["simulated_s"] == 0.0
        assert summary["query/knn"]["total_s"] >= 0.0

    def test_aggregate_empty(self):
        assert aggregate_spans([]) == {}

    def test_summarize_trace_renders_tree(self):
        doc = trace_to_dict(make_tracer())
        text = summarize_trace(doc)
        lines = text.splitlines()
        assert lines[0].startswith("trace: 2 root span(s)")
        assert any(
            line.startswith("- query/knn") and "simulated 0.2500 s" in line
            for line in lines
        )
        assert any(line.startswith("  - query/route") for line in lines)
        assert any("k=5" in line and "strategy=tna" in line for line in lines)

    def test_summarize_trace_max_depth(self):
        doc = trace_to_dict(make_tracer())
        text = summarize_trace(doc, max_depth=0)
        assert "query/route" not in text
        assert "query/knn" in text

    def test_summarize_validates_first(self):
        with pytest.raises(ValueError):
            summarize_trace({"schema": "bogus", "spans": []})

    def test_infinity_rendered_as_prometheus_inf(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", buckets=(1.0,)).observe(math.inf)
        text = metrics_to_text(reg)
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
