"""Serving metrics through the exposition pipeline (satellite of ISSUE 4).

Every ``serving_*`` instrument the SLO tracker publishes must survive the
full round trip: registry → Prometheus exposition text →
:func:`repro.telemetry.exporters.validate_metrics_text`.  This is the
contract the CI observability job scrapes against.
"""

import pytest

from repro.serving.slo import LATENCY_BUCKETS, SLOTracker
from repro.telemetry.exporters import metrics_to_text, validate_metrics_text
from repro.telemetry.metrics import get_registry

SERVING_METRICS = (
    "serving_requests_total",
    "serving_queue_depth",
    "serving_failed_total",
    "serving_shed_total",
    "serving_latency_seconds",
    "serving_result_cache_hits_total",
    "serving_result_cache_misses_total",
    "serving_batches_total",
    "serving_batch_occupancy",
    "serving_partition_loads_total",
    "serving_partition_skew",
)


@pytest.fixture()
def exercised_registry():
    """A registry where every serving_* metric has been touched."""
    tracker = SLOTracker()
    tracker.record_admitted(queue_depth=2)
    tracker.record_admitted(queue_depth=5)
    tracker.record_completed(0.004)
    tracker.record_completed(0.0, cached=True)
    tracker.record_completed(0.2, failed=True)
    tracker.record_shed()
    tracker.record_batch(n_queries=3, n_groups=2,
                         partitions_loaded=[1, 1, 4])
    return get_registry()


class TestExpositionText:
    def test_all_serving_metrics_expose(self, exercised_registry):
        text = metrics_to_text(exercised_registry)
        for name in SERVING_METRICS:
            assert exercised_registry.get(name) is not None, name
            assert f"\n# TYPE {name} " in "\n" + text, name

    def test_text_passes_validator(self, exercised_registry):
        text = metrics_to_text(exercised_registry)
        n_metrics = validate_metrics_text(text)
        assert n_metrics >= len(SERVING_METRICS)

    def test_latency_histogram_shape(self, exercised_registry):
        text = metrics_to_text(exercised_registry)
        lines = [l for l in text.splitlines()
                 if l.startswith("serving_latency_seconds")]
        bucket_lines = [l for l in lines if "_bucket{" in l]
        # One line per finite bucket bound plus the +Inf bucket.
        assert len(bucket_lines) == len(LATENCY_BUCKETS) + 1
        inf_line = [l for l in bucket_lines if 'le="+Inf"' in l]
        assert len(inf_line) == 1
        count_line = [l for l in lines
                      if l.startswith("serving_latency_seconds_count")]
        assert len(count_line) == 1
        # +Inf cumulative count equals _count — the invariant the
        # validator enforces; assert it directly too.
        assert inf_line[0].split()[-1] == count_line[0].split()[-1]

    def test_validator_rejects_corrupted_serving_text(self,
                                                      exercised_registry):
        text = metrics_to_text(exercised_registry)
        broken = text.replace(
            "# TYPE serving_queue_depth gauge",
            "# TYPE serving_queue_depth bogus-type",
        )
        with pytest.raises(ValueError):
            validate_metrics_text(broken)
