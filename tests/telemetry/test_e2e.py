"""End-to-end: a traced build + queries produce the documented telemetry.

Exercises the real instrumentation (engine stages, build phases, query
strategies, partition loads, Bloom tests) instead of synthetic spans, and
checks both exporters accept what comes out.
"""

import numpy as np
import pytest

from repro.core import (
    TardisConfig,
    build_tardis_index,
    exact_match,
    knn_exact,
    knn_multi_partitions_access,
    knn_target_node_access,
    range_query,
)
from repro.telemetry import (
    aggregate_spans,
    disable_tracing,
    enable_tracing,
    get_registry,
    get_tracer,
    metrics_to_text,
    trace_to_dict,
    validate_metrics_text,
    validate_trace,
)
from repro.tsdb import random_walk


@pytest.fixture(scope="module")
def traced_run():
    """Build and query a small index with tracing on; yield the tracer."""
    dataset = random_walk(500, length=64, seed=21).z_normalized()
    tracer = enable_tracing()
    try:
        index = build_tardis_index(
            dataset, TardisConfig(g_max_size=100, l_max_size=20, pth=4)
        )
        query = dataset.values[11]
        exact_match(index, query)
        knn_target_node_access(index, query, 5)
        knn_multi_partitions_access(index, query, 5)
        knn_exact(index, query, 5)
        range_query(index, query, radius=6.0)
    finally:
        disable_tracing()
    return tracer


def span_names(tracer) -> set:
    return {span.name for span in tracer.iter_spans()}


def test_build_emits_phase_and_stage_spans(traced_run):
    names = span_names(traced_run)
    assert {"build", "build/global phase", "build/local phase"} <= names
    stage_names = {n for n in names if n.startswith("stage/")}
    assert any(n.startswith("stage/global/") for n in stage_names)
    assert any(n.startswith("stage/local/") for n in stage_names)


def test_queries_emit_their_documented_spans(traced_run):
    names = span_names(traced_run)
    assert {
        "query/exact-match",
        "query/knn",
        "query/knn-exact",
        "query/range",
        "query/route",
        "query/load partition",
    } <= names


def test_query_roots_carry_accounting_attributes(traced_run):
    roots = {span.name: span for span in traced_run.roots}
    knn = roots["query/knn"]
    for key in (
        "strategy", "partitions_loaded", "candidates_examined",
        "nodes_visited", "nodes_pruned", "simulated_s",
    ):
        assert key in knn.attributes, key
    assert knn.attributes["partitions_loaded"] >= 1
    assert roots["query/exact-match"].attributes["found"] is True


def test_build_root_nests_the_whole_construction(traced_run):
    build = next(s for s in traced_run.roots if s.name == "build")
    child_names = [c.name for c in build.children]
    assert child_names[:2] == ["build/global phase", "build/local phase"]
    assert build.attributes["n_partitions"] >= 1
    assert build.attributes["simulated_s"] > 0


def test_trace_exports_and_validates(traced_run):
    doc = trace_to_dict(traced_run)
    n_spans = validate_trace(doc)
    assert n_spans >= 20
    summary = aggregate_spans(traced_run.roots)
    assert summary["query/load partition"]["count"] >= 4
    # Ledger-aligned: loads carry their simulated I/O charge.
    assert summary["query/load partition"]["simulated_s"] > 0


def test_metrics_reflect_the_run(traced_run):
    registry = get_registry()
    assert registry.counter("queries_total").value >= 4
    assert registry.counter("query_partitions_loaded_total").value >= 4
    assert registry.counter("index_builds_total").value >= 1
    assert registry.counter("engine_tasks_total").value >= 1
    bloom_tests = (
        registry.counter("query_bloom_positives_total").value
        + registry.counter("query_bloom_negatives_total").value
    )
    assert bloom_tests >= 1
    assert registry.histogram("query_simulated_seconds").count >= 4
    text = metrics_to_text(registry)
    assert validate_metrics_text(text) > 0


def test_disabled_tracer_collects_nothing_from_real_queries():
    dataset = random_walk(200, length=64, seed=8).z_normalized()
    assert not get_tracer().enabled  # the library default
    before = len(get_tracer().roots)
    index = build_tardis_index(
        dataset, TardisConfig(g_max_size=100, l_max_size=20)
    )
    knn_target_node_access(index, dataset.values[0], 3)
    assert len(get_tracer().roots) == before
