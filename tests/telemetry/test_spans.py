"""Tracer and span semantics: nesting, timing, thread safety, no-op path."""

import threading
import time

import pytest

from repro.telemetry.spans import (
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    traced,
)


class TestSpan:
    def test_duration_measured(self):
        span = Span("work")
        time.sleep(0.01)
        span.finish()
        assert 0.005 < span.duration_s < 1.0

    def test_duration_zero_while_open(self):
        assert Span("open").duration_s == 0.0

    def test_finish_idempotent(self):
        span = Span("once")
        span.finish()
        first = span.end_s
        span.finish()
        assert span.end_s == first

    def test_attributes_set_and_incr(self):
        span = Span("attrs", {"k": 3})
        span.set("strategy", "tna")
        span.incr("candidates", 5)
        span.incr("candidates", 2)
        assert span.attributes == {"k": 3, "strategy": "tna", "candidates": 7}

    def test_to_dict_jsonable(self):
        import numpy as np

        span = Span("json")
        span.set("n", np.int64(4))  # non-native types become strings
        span.set("ok", True)
        span.finish()
        doc = span.to_dict()
        assert doc["name"] == "json"
        assert doc["attributes"]["ok"] is True
        assert isinstance(doc["attributes"]["n"], str)
        assert doc["children"] == []


class TestTracerNesting:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        roots = tracer.roots
        assert [s.name for s in roots] == ["root"]
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [g.name for g in root.children[0].children] == ["grandchild"]
        assert [s.name for s in tracer.iter_spans()] == [
            "root", "child-a", "grandchild", "child-b"
        ]

    def test_sibling_roots_collected_in_order(self):
        tracer = Tracer(enabled=True)
        for name in ("one", "two", "three"):
            with tracer.span(name):
                pass
        assert [s.name for s in tracer.roots] == ["one", "two", "three"]

    def test_parent_duration_covers_children(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.005)
        assert outer.duration_s >= inner.duration_s > 0

    def test_current_returns_innermost(self):
        tracer = Tracer(enabled=True)
        assert tracer.current() is NULL_SPAN  # nothing open
        with tracer.span("a") as a:
            assert tracer.current() is a
            with tracer.span("b") as b:
                assert tracer.current() is b
            assert tracer.current() is a

    def test_exception_recorded_and_span_closed(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        (root,) = tracer.roots
        assert root.attributes["error"] == "RuntimeError: kaput"
        assert root.end_s is not None

    def test_reset_drops_spans_keeps_enabled(self):
        tracer = Tracer(enabled=True)
        with tracer.span("gone"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.enabled


class TestDisabledTracer:
    def test_span_returns_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        a = tracer.span("x", k=1)
        b = tracer.span("y")
        assert a is NULL_SPAN and b is NULL_SPAN

    def test_null_span_absorbs_all_calls(self):
        with NULL_SPAN as span:
            span.set("k", 1)
            span.incr("n")
        assert isinstance(span, NullSpan)
        assert span.duration_s == 0.0

    def test_nothing_collected_when_disabled(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible"):
            pass
        assert tracer.roots == []
        assert tracer.current() is NULL_SPAN

    def test_disabled_overhead_is_small(self):
        """The disabled path must stay cheap: no allocation, no clock."""
        tracer = Tracer(enabled=False)
        n = 20_000

        def run_disabled():
            for _ in range(n):
                with tracer.span("hot"):
                    pass

        start = time.perf_counter()
        run_disabled()
        disabled_s = time.perf_counter() - start
        # Loose sanity bound (not a benchmark): 20k no-op spans in well
        # under a second even on slow CI machines.
        assert disabled_s < 0.5


class TestThreadSafety:
    def test_each_thread_gets_its_own_subtree(self):
        tracer = Tracer(enabled=True)
        errors = []

        def worker(tag):
            try:
                for i in range(50):
                    with tracer.span(f"root-{tag}"):
                        with tracer.span(f"leaf-{tag}-{i}"):
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        roots = tracer.roots
        assert len(roots) == 4 * 50
        for root in roots:
            assert len(root.children) == 1  # no cross-thread adoption
            tag = root.name.split("-")[1]
            assert root.children[0].name.startswith(f"leaf-{tag}-")


class TestDecoratorAndGlobals:
    def test_traced_decorator_spans_when_enabled(self):
        tracer = Tracer(enabled=True)

        @tracer.traced("math/add")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert [s.name for s in tracer.roots] == ["math/add"]

    def test_traced_decorator_defaults_to_qualname(self):
        tracer = Tracer(enabled=True)

        @tracer.traced()
        def solo():
            return 1

        solo()
        assert tracer.roots[0].name.endswith("solo")

    def test_module_traced_checks_enabled_at_call_time(self):
        calls = []

        @traced("late")
        def fn():
            calls.append(1)

        fn()  # disabled: no span
        enable_tracing()
        try:
            fn()
            assert [s.name for s in get_tracer().roots] == ["late"]
        finally:
            disable_tracing()
        assert len(calls) == 2

    def test_enable_reset_and_disable_keep_spans(self):
        enable_tracing()
        try:
            with get_tracer().span("kept"):
                pass
        finally:
            disable_tracing()
        assert [s.name for s in get_tracer().roots] == ["kept"]
        enable_tracing()  # default reset=True clears prior spans
        try:
            assert get_tracer().roots == []
        finally:
            disable_tracing()
