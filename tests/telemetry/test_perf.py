"""Kernel cost counters, perf reports, and collapsed-stack profiles.

Covers the ``repro.telemetry.perf`` contract end to end: counter
arithmetic and the snapshot/delta/absorb fork-merge triple, registry
publication idempotence, the ``repro.perf/v1`` report and validator,
collapsed-stack conversion, attribution accounting — and the two
acceptance gates: disabled counters cost <3% on the batch-kNN hot
path, and cross-backend answer equivalence holds with counters on.
"""

from __future__ import annotations

import cProfile
import json
import time

import pytest

from repro.telemetry import metrics as metrics_mod
from repro.telemetry.perf import (
    KERNELS,
    PERF_SCHEMA,
    TOP_LEVEL_KERNELS,
    FoldedAccumulator,
    KernelProfiler,
    attributed_fraction,
    disable_kernel_counters,
    enable_kernel_counters,
    folded_to_lines,
    perf_report,
    profile_to_folded,
    publish_to_registry,
    summarize_kernels,
    validate_perf,
    write_folded,
    write_perf,
)


@pytest.fixture(autouse=True)
def _counters_off():
    """Every test starts and ends with the global profiler disabled."""
    disable_kernel_counters()
    KERNELS.reset()
    yield
    disable_kernel_counters()
    KERNELS.reset()


# ---------------------------------------------------------------------------
# counter arithmetic


def test_record_accumulates_calls_elements_seconds():
    prof = KernelProfiler()
    prof.enable()
    prof.record("paa", elements=128, seconds=0.5)
    prof.record("paa", elements=64, seconds=0.25)
    totals = prof.totals()
    assert totals["paa"] == {"calls": 2, "elements": 192, "seconds": 0.75}


def test_disabled_profiler_records_nothing():
    prof = KernelProfiler()
    prof.record("paa", elements=10, seconds=1.0)
    assert prof.totals() == {}
    assert not prof.enabled


def test_enable_reset_clears_previous_totals():
    prof = KernelProfiler()
    prof.enable()
    prof.record("sax", seconds=1.0)
    prof.enable(reset=True)
    assert prof.totals() == {}


def test_section_context_manager_times_block():
    prof = KernelProfiler()
    prof.enable()
    with prof.section("leaf_scan", elements=7):
        time.sleep(0.002)
    totals = prof.totals()
    assert totals["leaf_scan"]["calls"] == 1
    assert totals["leaf_scan"]["elements"] == 7
    assert totals["leaf_scan"]["seconds"] >= 0.001


def test_seconds_lookup_for_missing_kernel_is_zero():
    prof = KernelProfiler()
    prof.enable()
    assert prof.seconds("never_ran") == 0.0


# ---------------------------------------------------------------------------
# snapshot / delta / absorb (the fork-merge triple)


def test_delta_since_reports_only_new_work():
    prof = KernelProfiler()
    prof.enable()
    prof.record("encode", elements=5, seconds=0.1)
    snap = prof.snapshot()
    prof.record("encode", elements=3, seconds=0.2)
    prof.record("mindist", elements=1, seconds=0.05)
    delta = prof.delta_since(snap)
    # deltas are (calls, elements, seconds) tuples, absorb-ready
    assert delta["encode"][0] == 1
    assert delta["encode"][1] == 3
    assert delta["encode"][2] == pytest.approx(0.2)
    assert delta["mindist"][0] == 1
    assert "euclidean" not in delta


def test_absorb_merges_child_deltas():
    parent = KernelProfiler()
    parent.enable()
    parent.record("euclidean", elements=10, seconds=0.3)
    parent.absorb({"euclidean": (2, 4, 0.1), "deserialize": (1, 9, 0.01)})
    totals = parent.totals()
    assert totals["euclidean"]["calls"] == 3
    assert totals["euclidean"]["elements"] == 14
    assert totals["euclidean"]["seconds"] == pytest.approx(0.4)
    assert totals["deserialize"]["elements"] == 9


def test_absorb_empty_delta_is_a_no_op():
    prof = KernelProfiler()
    prof.enable()
    prof.absorb({})
    assert prof.totals() == {}


def test_delta_round_trips_through_absorb():
    child = KernelProfiler()
    child.enable()
    snap = child.snapshot()
    child.record("paa", elements=8, seconds=0.125)
    parent = KernelProfiler()
    parent.enable()
    parent.absorb(child.delta_since(snap))
    assert parent.totals() == child.totals()


# ---------------------------------------------------------------------------
# registry publication


def test_publish_to_registry_mirrors_totals_once():
    registry = metrics_mod.MetricsRegistry()
    enable_kernel_counters()
    KERNELS.record("route", elements=40, seconds=0.5)
    publish_to_registry(registry)
    assert registry.counter("kernel_route_calls_total").value == 1
    assert registry.counter("kernel_route_elements_total").value == 40
    # Publishing again without new work must not double-count.
    publish_to_registry(registry)
    assert registry.counter("kernel_route_calls_total").value == 1
    # New work publishes only the delta past the watermark.
    KERNELS.record("route", elements=2, seconds=0.1)
    publish_to_registry(registry)
    assert registry.counter("kernel_route_calls_total").value == 2
    assert registry.counter("kernel_route_elements_total").value == 42


# ---------------------------------------------------------------------------
# perf report + validator


def test_perf_report_round_trips_and_validates(tmp_path):
    enable_kernel_counters()
    KERNELS.record("paa", elements=100, seconds=0.25)
    KERNELS.record("sax", elements=100, seconds=0.1)
    path = tmp_path / "perf.json"
    write_perf(path)
    doc = json.loads(path.read_text())
    assert doc["schema"] == PERF_SCHEMA
    assert validate_perf(doc) == 2
    assert doc["kernels"]["paa"]["elements"] == 100


def test_validate_perf_rejects_wrong_schema():
    doc = perf_report()
    doc["schema"] = "repro.perf/v0"
    with pytest.raises(ValueError, match="schema"):
        validate_perf(doc)


def test_validate_perf_rejects_bad_kernel_name():
    doc = perf_report()
    doc["kernels"]["Bad Name"] = {
        "calls": 1, "elements": 0, "seconds": 0.0
    }
    with pytest.raises(ValueError):
        validate_perf(doc)


def test_validate_perf_rejects_non_integer_calls():
    doc = perf_report()
    doc["kernels"]["paa"] = {"calls": 1.5, "elements": 0, "seconds": 0.0}
    with pytest.raises(ValueError):
        validate_perf(doc)


def test_summarize_kernels_orders_by_seconds():
    kernels = {
        "paa": {"calls": 1, "elements": 1, "seconds": 0.1},
        "sax": {"calls": 1, "elements": 1, "seconds": 0.9},
    }
    table = summarize_kernels(kernels, limit=1)
    assert "sax" in table
    assert "paa" not in table  # limit=1 keeps only the hottest kernel


# ---------------------------------------------------------------------------
# attribution accounting


def test_attributed_fraction_sums_top_level_only():
    kernels = {
        "route": {"calls": 1, "elements": 1, "seconds": 0.2},
        "exec_compute": {"calls": 1, "elements": 1, "seconds": 0.6},
        # fine-grained kernels nest inside exec_compute: not re-counted
        "euclidean": {"calls": 9, "elements": 9, "seconds": 0.5},
    }
    attributed_s, fraction = attributed_fraction(kernels, wall_s=1.0)
    assert attributed_s == pytest.approx(0.8)
    assert fraction == pytest.approx(0.8)
    assert "euclidean" not in TOP_LEVEL_KERNELS


def test_attributed_fraction_zero_wall_is_zero():
    assert attributed_fraction({}, 0.0) == (0.0, 0.0)


# ---------------------------------------------------------------------------
# collapsed stacks


def _stats_for(fn) -> cProfile.Profile:
    prof = cProfile.Profile()
    prof.enable()
    fn()
    prof.disable()
    return prof


def test_profile_to_folded_produces_caller_callee_stacks(tmp_path):
    def leaf():
        return sum(range(2000))

    def trunk():
        return [leaf() for _ in range(50)]

    folded = profile_to_folded(_stats_for(trunk))
    assert folded, "expected at least one folded stack"
    assert all(t >= 0 for t in folded.values())
    joined = "\n".join(folded_to_lines(folded))
    assert "leaf" in joined
    path = tmp_path / "out.folded"
    write_folded(folded, path)
    lines = path.read_text().splitlines()
    # flamegraph.pl format: "frame;frame <integer-microseconds>"
    for line in lines:
        stack, _, value = line.rpartition(" ")
        assert stack
        assert int(value) >= 1


def test_folded_accumulator_merges_spans(tmp_path):
    acc = FoldedAccumulator()
    acc.add({"a;b": 1.0})
    acc.add({"a;b": 2.0, "c": 0.5})
    merged = acc.folded()
    assert merged["a;b"] == pytest.approx(3.0)
    assert acc.profiles == 2
    path = tmp_path / "merged.folded"
    acc.write(path)
    assert path.read_text().strip()
    acc.reset()
    assert acc.folded() == {}


# ---------------------------------------------------------------------------
# acceptance gates


def _batch_knn_wall(index, queries, reps: int = 5) -> float:
    from repro.core.batch import batch_knn_target_node

    # A warmed batch pass is ~1.5 ms; one call alone puts the 3% gate at
    # scheduler-jitter scale, so time a few back to back for signal.
    t0 = time.perf_counter()
    for _ in range(reps):
        batch_knn_target_node(index, queries, k=5)
    return time.perf_counter() - t0


def test_disabled_counters_overhead_under_three_percent(
    tardis_small, heldout_queries
):
    """With counters off the hot path must pay <3% vs never-instrumented.

    Both arms run with counters *disabled* — arm A immediately after an
    enable/disable cycle, arm B never enabled — interleaved, medians
    compared.  The gate bounds what the `if enabled:` guards cost.
    """
    index, queries = tardis_small, heldout_queries
    _batch_knn_wall(index, queries)  # warm caches before timing

    def one_measurement() -> tuple[float, float, float]:
        arm_a: list[float] = []
        arm_b: list[float] = []
        for _ in range(7):
            enable_kernel_counters()
            disable_kernel_counters()
            arm_a.append(_batch_knn_wall(index, queries))
            arm_b.append(_batch_knn_wall(index, queries))
        # min-of-reps: both arms run identical code, so their *best*
        # runs converge; medians wander with scheduler noise on small
        # hosts and would flake this gate.
        best_a, best_b = min(arm_a), min(arm_b)
        return 100.0 * abs(best_a - best_b) / max(best_a, best_b), \
            best_a, best_b

    # A real systematic >=3% cost fails every attempt; transient noise
    # (suite runs under load) gets two more chances to settle.
    deltas = []
    for _ in range(3):
        delta_pct, best_a, best_b = one_measurement()
        deltas.append(delta_pct)
        if delta_pct < 3.0:
            break
    assert min(deltas) < 3.0, (
        f"disabled-counter arms differ {deltas} % across attempts "
        f"(last: A={best_a:.6f}s B={best_b:.6f}s)"
    )


def test_cross_backend_answers_identical_with_counters_on(
    tardis_small, heldout_queries
):
    """serial vs forked processes agree while counters run in both."""
    from repro.cluster.executors import make_executor
    from repro.core.batch import batch_knn_target_node

    index, queries = tardis_small, heldout_queries
    enable_kernel_counters()
    serial = batch_knn_target_node(
        index, queries, k=5, executor=make_executor("serial", 1)
    )
    forked = batch_knn_target_node(
        index, queries, k=5, executor=make_executor("processes", 2)
    )
    assert [r.record_ids for r in serial.results] == \
        [r.record_ids for r in forked.results]
    totals = KERNELS.totals()
    # Child kernel deltas crossed the pipe and were absorbed: the fork
    # pass contributes serialize/deserialize on top of serial's compute.
    assert "exec_compute" in totals
    assert "exec_serialize" in totals
    assert "exec_deserialize" in totals
    assert totals["exec_serialize"]["elements"] > 0
