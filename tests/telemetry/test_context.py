"""Trace context: ids, explicit parent handoff, attach/detach tokens."""

import threading

import pytest

from repro.telemetry.context import (
    attach,
    current_span,
    detach,
    trace_id_of,
    under_parent,
)
from repro.telemetry.spans import (
    NULL_SPAN,
    NULL_TOKEN,
    Span,
    Tracer,
    new_trace_id,
)


class TestIdentity:
    def test_new_trace_id_shape(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 for i in ids)
        assert all(int(i, 16) >= 0 for i in ids)

    def test_span_carries_identity_triple(self):
        span = Span("root")
        assert span.parent_id is None
        assert span.trace_id and span.span_id
        child = Span("child")
        span.link_child(child)
        assert child.parent_id == span.span_id
        assert child.trace_id == span.trace_id

    def test_link_child_rewrites_subtree_trace_id(self):
        root = Span("root")
        foreign = Span("foreign")
        grandchild = Span("grand")
        foreign.link_child(grandchild)
        root.link_child(foreign)
        assert {s.trace_id for s in root.iter_spans()} == {root.trace_id}

    def test_trace_id_of(self):
        span = Span("x")
        assert trace_id_of(span) == span.trace_id
        assert trace_id_of(NULL_SPAN) is None
        assert trace_id_of(None) is None


class TestParentHandoff:
    def test_span_parent_overrides_thread_stack(self):
        tracer = Tracer(enabled=True)
        foreign = tracer.start_span("foreign-root")
        with tracer.span("local-root"):
            with tracer.span("handed-off", parent=foreign) as inner:
                assert inner.trace_id == foreign.trace_id
        tracer.end_span(foreign)
        # Only the two roots registered; handed-off lives under foreign.
        names = [r.name for r in tracer.roots]
        assert names == ["local-root", "foreign-root"]
        assert [c.name for c in foreign.children] == ["handed-off"]

    def test_start_end_span_crosses_threads(self):
        tracer = Tracer(enabled=True)
        root = tracer.start_span("serve/request")
        queue_span = tracer.start_span("serve/queue-wait", parent=root)

        def worker():
            tracer.end_span(queue_span)
            execute = tracer.start_span("serve/execute", parent=root)
            with tracer.span("query/load", parent=execute):
                pass
            tracer.end_span(execute)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.end_span(root)
        assert len(tracer.roots) == 1
        (only,) = tracer.roots
        assert [c.name for c in only.children] == [
            "serve/queue-wait", "serve/execute"
        ]
        assert {s.trace_id for s in only.iter_spans()} == {only.trace_id}

    def test_end_span_is_idempotent(self):
        tracer = Tracer(enabled=True)
        span = tracer.start_span("once")
        tracer.end_span(span)
        first = span.end_s
        tracer.end_span(span)
        assert span.end_s == first
        assert len(tracer.roots) == 1
        tracer.end_span(NULL_SPAN)  # no-op, no raise

    def test_disabled_tracer_hands_out_null(self):
        tracer = Tracer(enabled=False)
        assert tracer.start_span("x") is NULL_SPAN
        assert tracer.attach(NULL_SPAN) is NULL_TOKEN
        tracer.detach(NULL_TOKEN)  # no-op


class TestAttachDetach:
    def test_attach_makes_span_current(self):
        tracer = Tracer(enabled=True)
        root = tracer.start_span("root")
        token = tracer.attach(root)
        assert tracer.current() is root
        with tracer.span("child"):
            pass
        tracer.detach(token)
        tracer.end_span(root)
        assert [c.name for c in root.children] == ["child"]
        assert [r.name for r in tracer.roots] == ["root"]

    def test_detach_out_of_order_raises(self):
        tracer = Tracer(enabled=True)
        a = tracer.start_span("a")
        b = tracer.start_span("b")
        token_a = tracer.attach(a)
        tracer.attach(b)
        with pytest.raises(RuntimeError):
            tracer.detach(token_a)

    def test_module_level_helpers_use_shared_tracer(self):
        from repro.telemetry.spans import disable_tracing, enable_tracing

        tracer = enable_tracing()
        try:
            root = tracer.start_span("root")
            token = attach(root)
            assert current_span() is root
            detach(token)
            tracer.end_span(root)
        finally:
            disable_tracing()

    def test_under_parent_context_manager(self):
        from repro.telemetry.spans import disable_tracing, enable_tracing

        tracer = enable_tracing()
        try:
            root = tracer.start_span("root")
            with under_parent(root):
                with tracer.span("nested"):
                    pass
            assert tracer.current() is not root
            tracer.end_span(root)
            assert [c.name for c in root.children] == ["nested"]
        finally:
            disable_tracing()


class TestRootCollection:
    def test_attached_parent_spans_never_become_roots(self):
        tracer = Tracer(enabled=True)
        root = tracer.start_span("serve/request")
        for _ in range(3):
            child = tracer.start_span("serve/execute", parent=root)
            tracer.end_span(child)
        tracer.end_span(root)
        assert [r.name for r in tracer.roots] == ["serve/request"]

    def test_root_limit_rings(self):
        tracer = Tracer(enabled=True)
        tracer.set_root_limit(3)
        for i in range(10):
            span = tracer.start_span(f"r{i}")
            tracer.end_span(span)
        assert [r.name for r in tracer.roots] == ["r7", "r8", "r9"]
        tracer.set_root_limit(None)  # back to unbounded
        span = tracer.start_span("r10")
        tracer.end_span(span)
        assert len(tracer.roots) == 4

    def test_root_limit_validation(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            tracer.set_root_limit(0)

    def test_find_trace_newest_first(self):
        tracer = Tracer(enabled=True)
        first = tracer.start_span("a")
        tracer.end_span(first)
        second = tracer.start_span("b")
        tracer.end_span(second)
        assert tracer.find_trace(second.trace_id) is second
        assert tracer.find_trace(first.trace_id) is first
        assert tracer.find_trace("nope") is None

    def test_adopt_with_parent_reparents(self):
        tracer = Tracer(enabled=True)
        parent = tracer.start_span("driver")
        shipped = [Span("child-a"), Span("child-b")]
        for span in shipped:
            span.finish()
        tracer.adopt(shipped, parent=parent)
        tracer.end_span(parent)
        assert [r.name for r in tracer.roots] == ["driver"]
        assert [c.name for c in parent.children] == ["child-a", "child-b"]
        assert {s.trace_id for s in parent.iter_spans()} == {parent.trace_id}

    def test_adopt_without_parent_extends_roots(self):
        tracer = Tracer(enabled=True)
        shipped = [Span("lonely")]
        shipped[0].finish()
        tracer.adopt(shipped)
        assert [r.name for r in tracer.roots] == ["lonely"]
