"""Carrier round trips, deterministic sampling, and compact payloads.

The ``repro.tracectx/v1`` carrier is what turns N per-process traces
into one cluster trace: the router stamps it into shard-bound docs, the
shard opens a *remote* root from it (which never lands in the shard's
local root ring), and the subtree travels back as a capped compact
payload the router rebases and re-parents.  Every leg of that contract
is pinned here at the unit level; the cluster-shaped end-to-end checks
live in ``tests/sharding/test_distributed_trace.py``.
"""

import pytest

from repro.telemetry.carrier import (
    CARRIER_SCHEMA,
    COMPACT_SPAN_CAP,
    TraceContext,
    compact_spans,
    extract,
    inject,
    should_ship,
    spans_from_compact,
)
from repro.telemetry.spans import Span, Tracer


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestCarrierRoundTrip:
    def test_inject_extract_round_trip(self, tracer):
        span = tracer.start_span("route/shard-call", shard_id=1)
        carrier = inject(span)
        assert carrier["schema"] == CARRIER_SCHEMA
        ctx = extract({"op": "shard-knn", "ctx": carrier})
        assert ctx == TraceContext(span.trace_id, span.span_id)

    def test_inject_null_span_returns_none(self):
        disabled = Tracer(enabled=False)
        assert inject(disabled.start_span("x")) is None

    @pytest.mark.parametrize("doc", [
        None,
        {},
        {"ctx": None},
        {"ctx": "not-a-dict"},
        {"ctx": {"schema": "wrong/v9", "trace_id": "t", "parent_span_id": "p"}},
        {"ctx": {"schema": CARRIER_SCHEMA, "trace_id": "",
                 "parent_span_id": "p"}},
        {"ctx": {"schema": CARRIER_SCHEMA, "trace_id": "t",
                 "parent_span_id": 7}},
    ])
    def test_extract_tolerates_malformed(self, doc):
        assert extract(doc) is None

    def test_remote_root_is_not_a_local_root(self, tracer):
        """The load-bearing invariant: a root opened from a carrier has
        a (remote) parent, so ``end_span`` never collects it locally —
        it ships back in the reply instead of orphaning the trace."""
        remote = tracer.start_remote_span("shard/request", "tid", "pid")
        tracer.end_span(remote)
        assert remote not in tracer.roots
        assert remote.trace_id == "tid"
        assert remote.parent_id == "pid"


class TestShouldShip:
    def test_edges(self):
        assert should_ship("anything", 1.0) is True
        assert should_ship("anything", 1.5) is True
        assert should_ship("anything", 0.0) is False
        assert should_ship(None, 0.5) is False
        assert should_ship("", 0.5) is False

    def test_deterministic_across_calls(self):
        ids = [f"trace-{i:04x}" for i in range(500)]
        first = [should_ship(t, 0.3) for t in ids]
        second = [should_ship(t, 0.3) for t in ids]
        assert first == second

    def test_rate_roughly_proportional(self):
        ids = [f"trace-{i:04x}" for i in range(2000)]
        hits = sum(should_ship(t, 0.3) for t in ids)
        assert 450 < hits < 750  # 600 expected; loose deterministic band

    def test_monotone_in_rate(self):
        """A trace shipped at a low rate is shipped at every higher one
        (the hash threshold only moves up)."""
        for trace_id in (f"t{i}" for i in range(200)):
            if should_ship(trace_id, 0.2):
                assert should_ship(trace_id, 0.7)


def _tree(n_children: int) -> Span:
    root = Span("shard/request", {"shard_id": 2})
    root.end_s = root.start_s + 1.0
    for i in range(n_children):
        child = Span(f"query/load partition", {"partition_id": i},
                     trace_id=root.trace_id, parent_id=root.span_id)
        child.start_s = root.start_s + 0.001 * i
        child.end_s = child.start_s + 0.0005
        root.children.append(child)
    return root


class TestCompactSpans:
    def test_round_trip_preserves_structure(self):
        root = _tree(5)
        payload = compact_spans(root)
        assert payload["compact"] is True
        assert payload["truncated"] == 0
        rebuilt = spans_from_compact(payload, base_s=100.0)
        assert rebuilt.name == "shard/request"
        assert len(rebuilt.children) == 5
        assert rebuilt.start_s == pytest.approx(100.0)
        # rebased child offsets keep their relative layout
        assert rebuilt.children[3].start_s == pytest.approx(100.0 + 0.003)
        assert rebuilt.children[3].duration_s == pytest.approx(0.0005)
        assert rebuilt.attributes["shard_id"] == 2

    def test_cap_truncates_and_counts(self):
        root = _tree(300)
        payload = compact_spans(root)
        assert len(payload["spans"]) == COMPACT_SPAN_CAP
        assert payload["truncated"] == 301 - COMPACT_SPAN_CAP
        rebuilt = spans_from_compact(payload)
        assert rebuilt.attributes["spans_truncated"] == payload["truncated"]
        assert len(rebuilt.children) == COMPACT_SPAN_CAP - 1

    def test_payload_stays_bounded_regardless_of_fanout(self):
        """Satellite regression: the wire payload for a huge fan-out
        trace must not scale with the fan-out."""
        import json

        small = len(json.dumps(compact_spans(_tree(COMPACT_SPAN_CAP))))
        huge = len(json.dumps(compact_spans(_tree(5000))))
        assert huge <= small + 64  # only the truncated counter differs

    def test_malformed_payloads_yield_none(self):
        assert spans_from_compact(None) is None
        assert spans_from_compact({"compact": True, "spans": []}) is None
        assert spans_from_compact({"spans": [["a", 0, 0, "s", None, None]]}) \
            is None

    def test_compact_of_non_span_is_none(self):
        assert compact_spans(None) is None
        assert compact_spans({"name": "not-a-span"}) is None
