"""Tests for the simulated cluster engine: correctness of every operator
plus ledger accounting behaviour."""

import pytest

from repro.cluster import BlockStorage, CostModel, SimCluster


@pytest.fixture
def cluster() -> SimCluster:
    return SimCluster(n_workers=4)


class TestParallelize:
    def test_round_robin(self, cluster):
        data = cluster.parallelize(list(range(10)), n_partitions=3)
        assert data.n_partitions == 3
        assert data.count() == 10
        assert sorted(data.collect()) == list(range(10))

    def test_default_partitions(self, cluster):
        data = cluster.parallelize([1, 2])
        assert data.n_partitions == cluster.n_workers

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            SimCluster(n_workers=0)


class TestMapOperators:
    def test_map(self, cluster):
        data = cluster.parallelize(list(range(6)), 2)
        out = data.map(lambda x: x * 10, label="x10")
        assert sorted(out.collect()) == [0, 10, 20, 30, 40, 50]

    def test_flat_map(self, cluster):
        data = cluster.parallelize([1, 2], 1)
        out = data.flat_map(lambda x: [x] * x, label="rep")
        assert sorted(out.collect()) == [1, 2, 2]

    def test_map_partitions(self, cluster):
        data = cluster.parallelize(list(range(8)), 2)
        out = data.map_partitions(lambda rs: [sum(rs)], label="sum")
        assert out.n_partitions == 2
        assert sum(out.collect()) == 28

    def test_filter(self, cluster):
        data = cluster.parallelize(list(range(10)), 3)
        out = data.filter(lambda x: x % 2 == 0, label="even")
        assert sorted(out.collect()) == [0, 2, 4, 6, 8]

    def test_stage_recorded_in_ledger(self, cluster):
        data = cluster.parallelize(list(range(4)), 2)
        data.map(lambda x: x, label="noop")
        stage = cluster.ledger.stage("noop")
        assert stage.tasks == 2
        assert stage.wall_s > 0  # at least the task overheads


class TestReduceByKey:
    def test_word_count(self, cluster):
        words = ["a", "b", "a", "c", "b", "a"]
        data = cluster.parallelize([(w, 1) for w in words], 3)
        out = data.reduce_by_key(lambda x, y: x + y, label="count")
        assert dict(out.collect()) == {"a": 3, "b": 2, "c": 1}

    def test_custom_combine(self, cluster):
        data = cluster.parallelize([("k", 5), ("k", 3)], 2)
        out = data.reduce_by_key(max, label="max")
        assert dict(out.collect()) == {"k": 5}

    def test_substages_recorded(self, cluster):
        data = cluster.parallelize([("k", 1)], 1)
        data.reduce_by_key(lambda a, b: a + b, label="agg")
        labels = set(cluster.ledger.breakdown())
        assert {"agg/combine", "agg/shuffle", "agg/merge"} <= labels


class TestShuffle:
    def test_records_land_in_keyed_partition(self, cluster):
        data = cluster.parallelize(list(range(12)), 3)
        out = data.partition_by(lambda x: x % 4, n_partitions=4, label="mod")
        for pid in range(4):
            assert all(x % 4 == pid for x in out.partitions[pid])
        assert out.count() == 12

    def test_out_of_range_partitioner_raises(self, cluster):
        data = cluster.parallelize([1], 1)
        with pytest.raises(ValueError, match="outside"):
            data.partition_by(lambda x: 5, n_partitions=2, label="bad")

    def test_invalid_partition_count(self, cluster):
        data = cluster.parallelize([1], 1)
        with pytest.raises(ValueError):
            data.partition_by(lambda x: 0, n_partitions=0, label="bad")

    def test_cross_node_bytes_charged(self):
        # 2 workers on 2 nodes: moving everything to partition 1 (worker 1,
        # node 1) from partition 0 (worker 0, node 0) crosses the network.
        cluster = SimCluster(n_workers=2, cost_model=CostModel(n_nodes=2))
        data = cluster.parallelize([1.0] * 100, 1)  # all in partition 0
        data.partition_by(lambda x: 1, n_partitions=2, label="move")
        assert cluster.ledger.stage("move").network_s > 0

    def test_same_node_bytes_free(self):
        # Single node: shuffles never touch the network.
        cluster = SimCluster(n_workers=4, cost_model=CostModel(n_nodes=1))
        data = cluster.parallelize(list(range(100)), 4)
        data.partition_by(lambda x: x % 4, n_partitions=4, label="move")
        assert cluster.ledger.stage("move").network_s == 0.0


class TestStorageIntegration:
    def test_read_storage_one_partition_per_block(self, cluster):
        storage = BlockStorage.from_records(list(range(10)), block_capacity=3)
        data = cluster.read_storage(storage, label="read")
        assert data.n_partitions == 4
        assert sorted(data.collect()) == list(range(10))
        assert cluster.ledger.stage("read").io_s > 0

    def test_read_blocks_subset(self, cluster):
        storage = BlockStorage.from_records(list(range(10)), block_capacity=5)
        data = cluster.read_blocks(storage.blocks[:1], label="read")
        assert data.count() == 5


class TestDriverAndBroadcast:
    def test_broadcast_returns_value_and_charges(self, cluster):
        b = cluster.broadcast({"x": list(range(1000))}, label="bcast")
        assert b.value["x"][0] == 0
        assert cluster.ledger.stage("bcast").network_s > 0

    def test_run_on_driver(self, cluster):
        result = cluster.run_on_driver(lambda: sum(range(100)), label="drv")
        assert result == 4950
        assert cluster.ledger.stage("drv").cpu_s >= 0

    def test_charge_disk_roundtrip(self, cluster):
        cluster.charge_disk_write(10 * 1024 * 1024, label="spill w")
        cluster.charge_disk_read(10 * 1024 * 1024, label="spill r")
        assert cluster.ledger.stage("spill w").io_s > 0
        assert cluster.ledger.stage("spill r").io_s > 0


class TestDeterminism:
    def test_pipeline_output_is_deterministic(self):
        def run() -> dict:
            cluster = SimCluster(n_workers=3)
            data = cluster.parallelize(list(range(50)), 5)
            pairs = data.map(lambda x: (x % 7, x), label="kv")
            agg = pairs.reduce_by_key(lambda a, b: a + b, label="agg")
            return dict(agg.collect())

        assert run() == run()
