"""Model-based property tests: the cluster engine vs plain-list semantics.

Random pipelines of map / filter / flat_map / partition_by / reduce_by_key
run both on the engine and on a naive list model; outputs must agree as
multisets (the engine guarantees no record ordering).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SimCluster

# Operation alphabet: (name, engine-step, model-step) pairs built below.
_OPS = st.sampled_from(["map", "filter", "flat_map", "repartition"])


@st.composite
def pipelines(draw):
    records = draw(st.lists(st.integers(-50, 50), min_size=1, max_size=60))
    ops = draw(st.lists(_OPS, max_size=5))
    n_partitions = draw(st.integers(1, 6))
    return records, ops, n_partitions


def _apply(op: str, engine_data, model: list):
    if op == "map":
        return (
            engine_data.map(lambda x: x * 3 + 1, label="map"),
            [x * 3 + 1 for x in model],
        )
    if op == "filter":
        return (
            engine_data.filter(lambda x: x % 2 == 0, label="filter"),
            [x for x in model if x % 2 == 0],
        )
    if op == "flat_map":
        return (
            engine_data.flat_map(lambda x: [x, -x], label="flat"),
            [y for x in model for y in (x, -x)],
        )
    if op == "repartition":
        return (
            engine_data.partition_by(lambda x: abs(x) % 3, 3, label="part"),
            model,
        )
    raise AssertionError(op)


class TestEngineAgainstModel:
    @given(pipelines())
    @settings(max_examples=80, deadline=None)
    def test_pipeline_matches_list_semantics(self, spec):
        records, ops, n_partitions = spec
        cluster = SimCluster(n_workers=3)
        engine_data = cluster.parallelize(records, n_partitions)
        model = list(records)
        for op in ops:
            engine_data, model = _apply(op, engine_data, model)
        assert Counter(engine_data.collect()) == Counter(model)

    @given(pipelines())
    @settings(max_examples=50, deadline=None)
    def test_reduce_by_key_matches_counter(self, spec):
        records, _ops, n_partitions = spec
        cluster = SimCluster(n_workers=3)
        pairs = cluster.parallelize(
            [(x % 5, 1) for x in records], n_partitions
        )
        reduced = dict(
            pairs.reduce_by_key(lambda a, b: a + b, label="agg").collect()
        )
        assert reduced == dict(Counter(x % 5 for x in records))

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=50),
        st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_shuffle_preserves_multiset(self, records, n_out):
        cluster = SimCluster(n_workers=4)
        data = cluster.parallelize(records, 3)
        shuffled = data.partition_by(lambda x: x % n_out, n_out, label="s")
        assert Counter(shuffled.collect()) == Counter(records)
        for pid, partition in enumerate(shuffled.partitions):
            assert all(x % n_out == pid for x in partition)

    @given(st.lists(st.integers(), min_size=0, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_ledger_clock_monotone(self, records):
        cluster = SimCluster(n_workers=2)
        data = cluster.parallelize(records, 2)
        before = cluster.ledger.clock_s
        data.map(lambda x: x, label="m").collect()
        assert cluster.ledger.clock_s >= before
