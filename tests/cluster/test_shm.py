"""Shared-memory transport lifecycle: segments never leak, the export
protocol only fires on the executor result pipe, and crash orphans get
swept.

The invariant under test is the one that matters operationally: after
any sequence of builds/queries — including a child that dies mid-write —
``/dev/shm`` holds zero ``repro_shm_*`` segments belonging to this
process tree.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.cluster import shm
from repro.core.columnar import ColumnarBlock
from repro.core.config import TardisConfig
from repro.core.isaxt import signature_of_series
from repro.tsdb.series import z_normalize

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="POSIX shared memory unavailable"
)

_SHM_DIR = "/dev/shm"


def our_segments() -> list[str]:
    if not os.path.isdir(_SHM_DIR):
        return []
    prefix = shm.segment_prefix()
    return [f for f in os.listdir(_SHM_DIR) if f.startswith(prefix)]


def make_block(n: int, length: int = 64) -> ColumnarBlock:
    cfg = TardisConfig(word_length=8, cardinality_bits=4)
    rng = np.random.default_rng(0)
    values = z_normalize(np.cumsum(rng.standard_normal((n, length)), axis=1))
    records = [
        (signature_of_series(values[i], cfg.word_length,
                             cfg.cardinality_bits), i, values[i])
        for i in range(n)
    ]
    return ColumnarBlock.from_records(records, cfg.word_length)


class TestSegmentLifecycle:
    def test_create_attach_round_trip(self):
        array = np.arange(1000, dtype=np.float64).reshape(50, 20)
        descriptor = shm.create_segment(array)
        assert descriptor["name"].startswith(shm.segment_prefix())
        view, handle = shm.attach_array(descriptor)
        np.testing.assert_array_equal(view, array)
        assert view.dtype == array.dtype and view.shape == array.shape

    def test_attach_unlinks_immediately(self):
        """The segment *name* must not outlive the attach — a later crash
        can then never leak it, even while the view stays readable."""
        array = np.ones(512)
        descriptor = shm.create_segment(array)
        assert descriptor["name"] in our_segments()
        view, _handle = shm.attach_array(descriptor)
        assert descriptor["name"] not in our_segments()
        assert view.sum() == 512  # memory outlives the unlink

    def test_release_all_leaves_nothing(self):
        for _ in range(3):
            descriptor = shm.create_segment(np.zeros(64))
            shm.attach_array(descriptor)
        shm.release_all()
        assert our_segments() == []

    def test_cleanup_orphans_sweeps_stale_segment(self):
        """Simulate a child that created a segment and died before the
        driver attached: the named file lingers until the orphan sweep."""
        descriptor = shm.create_segment(np.arange(256, dtype=np.int64))
        assert descriptor["name"] in our_segments()
        removed = shm.cleanup_orphans(os.getpid())
        assert descriptor["name"] in removed
        assert our_segments() == []
        # Sweeping again is a harmless no-op.
        assert shm.cleanup_orphans(os.getpid()) == []


class TestExportGating:
    def test_disabled_by_default(self):
        assert not shm.export_enabled()

    def test_enabled_only_inside_context(self):
        with shm.exporting():
            assert shm.export_enabled()
            with shm.exporting():  # re-entrant
                assert shm.export_enabled()
            assert shm.export_enabled()
        assert not shm.export_enabled()

    def test_plain_pickle_never_creates_segments(self):
        block = make_block(200)
        assert block.nbytes > 16 * 1024
        before = our_segments()
        pickle.loads(pickle.dumps(block))
        assert our_segments() == before

    def test_export_ships_descriptors_and_collapses_pickle(self):
        """Inside ``exporting``, large arrays leave the pickle stream —
        the payload shrinks to descriptor size — and the receiving side
        reconstructs them bit-for-bit while unlinking every segment."""
        block = make_block(2000)
        plain = pickle.dumps(block)
        with shm.exporting():
            exported = pickle.dumps(block)
        try:
            assert len(exported) < len(plain) / 10
            assert len(our_segments()) > 0
        finally:
            clone = pickle.loads(exported)  # attaches + unlinks
        np.testing.assert_array_equal(clone.values, block.values)
        np.testing.assert_array_equal(clone.record_ids, block.record_ids)
        np.testing.assert_array_equal(clone.signatures, block.signatures)
        np.testing.assert_array_equal(clone.symbols, block.symbols)
        assert our_segments() == []

    def test_small_arrays_stay_inline(self):
        """Below the size floor a segment round-trip costs more than the
        pickle bytes it saves, so tiny blocks ship inline."""
        block = make_block(3)
        with shm.exporting():
            payload = pickle.dumps(block)
        assert our_segments() == []
        clone = pickle.loads(payload)
        np.testing.assert_array_equal(clone.values, block.values)


class TestExecutorIntegration:
    def test_fork_build_leaves_no_segments(self):
        """End to end: a processes-backend build ships its blocks through
        shm and the driver ends with zero residual segments."""
        from repro.cluster import SimCluster
        from repro.cluster.executors import make_executor
        from repro.core import build_tardis_index
        from repro.tsdb import random_walk

        dataset = random_walk(600, length=64, seed=21).z_normalized()
        config = TardisConfig(g_max_size=150, l_max_size=25, pth=4,
                              n_workers=2)
        cluster = SimCluster(
            n_workers=2, executor=make_executor("processes", jobs=2)
        )
        before = our_segments()
        index = build_tardis_index(dataset, config, cluster=cluster)
        assert our_segments() == before
        index.validate()
        # Blocks arrived intact across the pipe.
        total = sum(p.block.n_rows for p in index.partitions.values())
        assert total == 600
