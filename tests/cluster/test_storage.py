"""Tests for HDFS-like block storage and block-level sampling."""

import numpy as np
import pytest

from repro.cluster.storage import Block, BlockStorage
from repro.tsdb import random_walk


class TestBlockLayout:
    def test_from_records_partitioning(self):
        storage = BlockStorage.from_records(list(range(10)), block_capacity=3)
        assert storage.n_blocks == 4
        assert [len(b) for b in storage.blocks] == [3, 3, 3, 1]
        assert len(storage) == 10

    def test_block_ids_sequential(self):
        storage = BlockStorage.from_records(list(range(7)), block_capacity=2)
        assert [b.block_id for b in storage.blocks] == [0, 1, 2, 3]

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            BlockStorage.from_records([1], block_capacity=0)

    def test_from_dataset_records(self):
        ds = random_walk(5, length=16)
        storage = BlockStorage.from_dataset(ds, block_capacity=2)
        rid, series = storage.blocks[0].records[0]
        assert rid == 0
        assert series.shape == (16,)
        assert len(storage) == 5

    def test_nbytes_accounts_payload(self):
        ds = random_walk(4, length=16)
        storage = BlockStorage.from_dataset(ds, block_capacity=2)
        # 4 series x 16 points x 8 bytes + 4 rids x 8 bytes
        assert storage.nbytes == 4 * 16 * 8 + 4 * 8

    def test_block_nbytes_precomputed(self):
        block = Block(block_id=0, records=[(1, np.zeros(4))])
        assert block.nbytes == 8 + 32


class TestBlockSampling:
    def test_fraction_of_blocks(self):
        storage = BlockStorage.from_records(list(range(100)), block_capacity=10)
        sample = storage.sample_blocks(0.3, seed=1)
        assert len(sample) == 3

    def test_at_least_one_block(self):
        storage = BlockStorage.from_records(list(range(10)), block_capacity=10)
        assert len(storage.sample_blocks(0.01, seed=0)) == 1

    def test_full_fraction_returns_everything(self):
        storage = BlockStorage.from_records(list(range(30)), block_capacity=10)
        assert len(storage.sample_blocks(1.0, seed=0)) == 3

    def test_no_duplicates(self):
        storage = BlockStorage.from_records(list(range(100)), block_capacity=5)
        sample = storage.sample_blocks(0.5, seed=7)
        ids = [b.block_id for b in sample]
        assert len(ids) == len(set(ids))

    def test_deterministic_given_seed(self):
        storage = BlockStorage.from_records(list(range(100)), block_capacity=5)
        a = [b.block_id for b in storage.sample_blocks(0.4, seed=9)]
        b = [b.block_id for b in storage.sample_blocks(0.4, seed=9)]
        assert a == b

    def test_invalid_fraction_raises(self):
        storage = BlockStorage.from_records([1], block_capacity=1)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                storage.sample_blocks(bad)

    def test_empty_storage_returns_empty(self):
        assert BlockStorage(blocks=[], block_capacity=5).sample_blocks(0.5) == []
