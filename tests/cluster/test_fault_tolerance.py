"""Engine fault tolerance: retries under the deterministic injector and
the legacy CostModel failure knob.

The injector (``repro.faults``) is the primary fault source now — plans
target stages by label, confine faults to early attempts, and journal
every injection.  The CostModel's ``task_failure_rate`` remains as the
analytic-cost path and keeps its own coverage below.
"""

import pytest

from repro.cluster import CostModel, SimCluster, TaskFailedError
from repro.faults import active_plan


def flaky_cluster(rate: float, attempts: int = 4, seed: int = 1) -> SimCluster:
    return SimCluster(
        n_workers=4,
        cost_model=CostModel(task_failure_rate=rate, task_max_attempts=attempts),
        failure_seed=seed,
    )


def crash_plan(seed: int, stage: str = "*", attempts=(1, 2),
               probability: float = 0.5) -> dict:
    return {
        "schema": "repro.faults/v1",
        "seed": seed,
        "rules": [
            {"kind": "task-crash", "stage": stage,
             "attempt": list(attempts), "probability": probability},
        ],
    }


class TestInjectedFaults:
    def test_results_correct_despite_crashes(self):
        cluster = SimCluster(n_workers=4)
        data = cluster.parallelize(list(range(100)), 10)
        with active_plan(crash_plan(0, probability=0.6)) as injector:
            out = data.map(lambda x: x * 2, label="x2")
            assert injector.stats()["by_kind"]["task-crash"] >= 1
        assert sorted(out.collect()) == [2 * x for x in range(100)]

    def test_crashes_cost_extra_wall_time(self):
        work = list(range(200))
        healthy = SimCluster(n_workers=4)
        healthy.parallelize(work, 8).map(lambda x: x * x, label="sq")
        flaky = SimCluster(n_workers=4)
        with active_plan(crash_plan(3, stage="sq", probability=0.8)):
            flaky.parallelize(work, 8).map(lambda x: x * x, label="sq")
        assert flaky.ledger.stage("sq").wall_s > healthy.ledger.stage("sq").wall_s

    def test_exhaustion_raises_typed_injected_error(self):
        cluster = SimCluster(n_workers=2)
        data = cluster.parallelize([1, 2], 2)
        # No attempt selector + probability 1.0: every retry crashes too.
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "task-crash", "stage": "doomed"},
        ]}
        with active_plan(plan):
            with pytest.raises(TaskFailedError, match="injected"):
                data.map(lambda x: x, label="doomed")

    def test_crashed_attempts_never_execute_the_task(self):
        calls: list[int] = []
        cluster = SimCluster(n_workers=2)
        data = cluster.parallelize(list(range(8)), 4)
        with active_plan(crash_plan(0, stage="spy", probability=0.7)) as inj:
            out = data.map(lambda x: calls.append(x) or x, label="spy")
            crashed = inj.stats()["by_kind"].get("task-crash", 0)
            assert crashed >= 1
        assert sorted(out.collect()) == list(range(8))
        # Each element ran exactly once: crashed attempts were cancelled
        # before user code, and only the surviving attempt executed it.
        assert sorted(calls) == list(range(8))

    def test_journal_deterministic_per_seed(self):
        def run(seed: int) -> list[str]:
            cluster = SimCluster(n_workers=4)
            data = cluster.parallelize(list(range(40)), 8)
            with active_plan(crash_plan(seed)) as injector:
                data.map(lambda x: x + 1, label="inc")
                return injector.journal_lines()

        assert run(7) == run(7)
        assert run(7) != run(8)  # 50% over 8+ sites: collision ~ 1/256

    def test_slow_tasks_add_wall_time_only(self):
        plan = {"schema": "repro.faults/v1", "seed": 2, "rules": [
            {"kind": "task-slow", "stage": "m", "delay_ms": 1.0},
        ]}
        baseline = SimCluster(n_workers=4)
        baseline.parallelize(list(range(20)), 4).map(lambda x: x, label="m")
        slow = SimCluster(n_workers=4)
        with active_plan(plan):
            out = slow.parallelize(list(range(20)), 4).map(
                lambda x: x, label="m"
            )
        assert sorted(out.collect()) == list(range(20))
        assert slow.ledger.stage("m").tasks == baseline.ledger.stage("m").tasks
        assert slow.ledger.stage("m").wall_s > baseline.ledger.stage("m").wall_s

    def test_end_to_end_build_survives_injected_crashes(self):
        from repro.core import TardisConfig, build_tardis_index, exact_match
        from repro.tsdb import random_walk

        dataset = random_walk(1000, length=32, seed=4).z_normalized()
        with active_plan(crash_plan(9, probability=0.4)) as injector:
            index = build_tardis_index(
                dataset, TardisConfig(g_max_size=200, l_max_size=20)
            )
            assert injector.stats()["injected"] > 0
        total = sum(p.n_records for p in index.partitions.values())
        assert total == 1000
        assert 17 in exact_match(index, dataset.values[17]).record_ids


class TestCostModelRetries:
    """The legacy analytic failure knob (CostModel.task_failure_rate)."""

    def test_results_correct_despite_failures(self):
        cluster = flaky_cluster(0.3)
        data = cluster.parallelize(list(range(100)), 10)
        out = data.map(lambda x: x * 2, label="x2")
        assert sorted(out.collect()) == [2 * x for x in range(100)]

    def test_failures_cost_extra(self):
        healthy = SimCluster(n_workers=4)
        # Generous attempt budget: this test is about cost accounting, not
        # abort behaviour, so exhaustion must be effectively impossible.
        flaky = flaky_cluster(0.3, attempts=20, seed=3)
        work = list(range(2000))
        healthy.parallelize(work, 8).map(lambda x: x * x, label="sq")
        flaky.parallelize(work, 8).map(lambda x: x * x, label="sq")
        assert flaky.ledger.stage("sq").tasks > healthy.ledger.stage("sq").tasks
        assert flaky.ledger.stage("sq").wall_s > healthy.ledger.stage("sq").wall_s

    def test_retry_exhaustion_raises(self):
        cluster = flaky_cluster(1.0, attempts=3)
        data = cluster.parallelize([1], 1)
        with pytest.raises(TaskFailedError, match="3 attempts"):
            data.map(lambda x: x, label="doomed")

    def test_deterministic_given_seed(self):
        def run(seed: int) -> int:
            cluster = flaky_cluster(0.4, seed=seed)
            data = cluster.parallelize(list(range(50)), 5)
            data.map(lambda x: x, label="m")
            return cluster.ledger.stage("m").tasks

        assert run(7) == run(7)
        # (Different seeds usually differ, but that's not guaranteed.)

    def test_zero_rate_never_retries(self):
        cluster = flaky_cluster(0.0)
        data = cluster.parallelize(list(range(30)), 6)
        data.map(lambda x: x, label="m")
        assert cluster.ledger.stage("m").tasks == 6
