"""Tests for task-failure injection and retry behaviour in the engine."""

import pytest

from repro.cluster import CostModel, SimCluster, TaskFailedError


def flaky_cluster(rate: float, attempts: int = 4, seed: int = 1) -> SimCluster:
    return SimCluster(
        n_workers=4,
        cost_model=CostModel(task_failure_rate=rate, task_max_attempts=attempts),
        failure_seed=seed,
    )


class TestRetries:
    def test_results_correct_despite_failures(self):
        cluster = flaky_cluster(0.3)
        data = cluster.parallelize(list(range(100)), 10)
        out = data.map(lambda x: x * 2, label="x2")
        assert sorted(out.collect()) == [2 * x for x in range(100)]

    def test_failures_cost_extra(self):
        healthy = SimCluster(n_workers=4)
        # Generous attempt budget: this test is about cost accounting, not
        # abort behaviour, so exhaustion must be effectively impossible.
        flaky = flaky_cluster(0.3, attempts=20, seed=3)
        work = list(range(2000))
        healthy.parallelize(work, 8).map(lambda x: x * x, label="sq")
        flaky.parallelize(work, 8).map(lambda x: x * x, label="sq")
        assert flaky.ledger.stage("sq").tasks > healthy.ledger.stage("sq").tasks
        assert flaky.ledger.stage("sq").wall_s > healthy.ledger.stage("sq").wall_s

    def test_retry_exhaustion_raises(self):
        cluster = flaky_cluster(1.0, attempts=3)
        data = cluster.parallelize([1], 1)
        with pytest.raises(TaskFailedError, match="3 attempts"):
            data.map(lambda x: x, label="doomed")

    def test_deterministic_given_seed(self):
        def run(seed: int) -> int:
            cluster = flaky_cluster(0.4, seed=seed)
            data = cluster.parallelize(list(range(50)), 5)
            data.map(lambda x: x, label="m")
            return cluster.ledger.stage("m").tasks

        assert run(7) == run(7)
        # (Different seeds usually differ, but that's not guaranteed.)

    def test_zero_rate_never_retries(self):
        cluster = flaky_cluster(0.0)
        data = cluster.parallelize(list(range(30)), 6)
        data.map(lambda x: x, label="m")
        assert cluster.ledger.stage("m").tasks == 6

    def test_end_to_end_build_survives_failures(self):
        """A full TARDIS build completes correctly on a flaky cluster."""
        from repro.core import TardisConfig, build_tardis_index, exact_match
        from repro.tsdb import random_walk

        dataset = random_walk(1000, length=32, seed=4).z_normalized()
        cluster = flaky_cluster(0.2, seed=9)
        index = build_tardis_index(
            dataset,
            TardisConfig(g_max_size=200, l_max_size=20),
            cluster=cluster,
        )
        total = sum(p.n_records for p in index.partitions.values())
        assert total == 1000
        assert 17 in exact_match(index, dataset.values[17]).record_ids
