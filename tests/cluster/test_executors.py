"""Tests for the pluggable task-execution backends.

The contract every backend must keep (docs/PARALLELISM.md): results come
back in input order, the lowest failing task index wins when several
fail, and telemetry mutations made inside tasks reach the shared driver
registry/tracer — directly for threads, via pipe-merged deltas for fork
children.
"""

import os

import pytest

from repro.cluster import SimCluster, TaskFailedError
from repro.cluster.executors import (
    EXECUTOR_KINDS,
    ForkProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    resolve_executor,
    set_default_executor,
)
from repro.telemetry.metrics import MetricsRegistry, get_registry
from repro.telemetry.spans import get_tracer

ALL_KINDS = list(EXECUTOR_KINDS)


def executor_for(kind, jobs=3):
    return make_executor(kind, jobs)


class TestContract:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_results_in_input_order(self, kind):
        ex = executor_for(kind)
        items = list(range(23))
        results = ex.map_tasks(lambda i, item: (i, item * item), items)
        assert results == [(i, i * i) for i in items]

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_empty_and_singleton(self, kind):
        ex = executor_for(kind)
        assert ex.map_tasks(lambda i, item: item, []) == []
        assert ex.map_tasks(lambda i, item: item + 1, [41]) == [42]

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_lowest_index_error_wins(self, kind):
        ex = executor_for(kind)

        def explode(i, item):
            if i in (2, 5, 7):
                raise ValueError(f"task {i}")
            return item

        with pytest.raises(ValueError, match="task 2"):
            ex.map_tasks(explode, list(range(10)))

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_task_clock_is_monotonic_nonnegative(self, kind):
        clock = executor_for(kind).task_clock
        a = clock()
        b = clock()
        assert b >= a >= 0.0


class TestTelemetryMerging:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_counters_from_tasks_reach_driver_registry(self, kind):
        ex = executor_for(kind)
        registry = get_registry()
        before = registry.counter("executor_test_total", "test").value

        def bump(i, item):
            get_registry().counter("executor_test_total", "test").inc()
            return item

        ex.map_tasks(bump, list(range(8)))
        after = registry.counter("executor_test_total", "test").value
        assert after - before == 8

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_spans_from_tasks_reach_driver_tracer(self, kind):
        ex = executor_for(kind)
        tracer = get_tracer()
        was_enabled = tracer.enabled
        tracer.enabled = True
        before = len(tracer.roots)

        def traced_task(i, item):
            with get_tracer().span("executor-test", index=i):
                return item

        try:
            ex.map_tasks(traced_task, list(range(6)))
        finally:
            tracer.enabled = was_enabled
        new = [s for s in tracer.roots[before:] if s.name == "executor-test"]
        assert len(new) == 6
        assert sorted(s.attributes["index"] for s in new) == list(range(6))


class TestRegistrySnapshots:
    def test_delta_since_and_absorb_round_trip(self):
        source = MetricsRegistry()
        sink = MetricsRegistry()
        source.counter("c_total", "h").inc(3)
        source.gauge("g", "h").set(2.5)
        source.histogram("h_seconds", "h").observe(0.1)
        snapshot = source.snapshot()
        source.counter("c_total", "h").inc(4)
        source.gauge("g", "h").inc(1.5)
        source.histogram("h_seconds", "h").observe(0.2)
        source.histogram("h_seconds", "h").observe(3.0)

        sink.absorb(source.delta_since(snapshot))
        assert sink.counter("c_total", "h").value == 4
        assert sink.gauge("g", "h").value == 1.5
        hist = sink.histogram("h_seconds", "h")
        assert hist._count == 2
        assert hist._sum == pytest.approx(3.2)

    def test_zero_delta_is_empty(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h").inc()
        assert registry.delta_since(registry.snapshot()) == {}


class TestResolution:
    def test_make_executor_caches_instances(self):
        assert make_executor("threads", 3) is make_executor("threads", 3)
        assert make_executor("threads", 3) is not make_executor("threads", 4)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("cloud")

    def test_bad_jobs_raises(self):
        with pytest.raises(ValueError, match="jobs"):
            make_executor("threads", 0)

    def test_resolve_passthrough_and_strings(self):
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("threads", 2), ThreadExecutor)
        assert isinstance(resolve_executor("processes", 2), ForkProcessExecutor)

    def test_default_executor_round_trip(self):
        original = resolve_executor(None)
        try:
            assert set_default_executor("serial").kind == "serial"
            assert resolve_executor(None).kind == "serial"
            # kind=None keeps the kind, changes jobs only.
            assert set_default_executor(jobs=2).kind == "serial"
        finally:
            set_default_executor(original.kind, original.jobs)


class TestEngineIntegration:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_wordcount_pipeline(self, kind):
        cluster = SimCluster(n_workers=4, executor=make_executor(kind, 2))
        data = cluster.parallelize(["a", "b", "a", "c", "b", "a"] * 10, 6)
        counts = dict(
            data.map(lambda w: (w, 1), label="pair")
            .reduce_by_key(lambda a, b: a + b, label="count")
            .collect()
        )
        assert counts == {"a": 30, "b": 20, "c": 10}
        assert cluster.ledger.clock_s > 0

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_failure_injection_deterministic_across_backends(self, kind):
        from repro.cluster.costmodel import CostModel

        model = CostModel(task_failure_rate=0.2, task_max_attempts=4)
        cluster = SimCluster(
            n_workers=4, cost_model=model, failure_seed=123,
            executor=make_executor(kind, 2),
        )
        data = cluster.parallelize(list(range(40)), 8)
        out = data.map(lambda x: x + 1, label="inc").collect()
        assert sorted(out) == list(range(1, 41))
        serial_model = CostModel(task_failure_rate=0.2, task_max_attempts=4)
        reference = SimCluster(
            n_workers=4, cost_model=serial_model, failure_seed=123,
            executor="serial",
        )
        reference.parallelize(list(range(40)), 8).map(
            lambda x: x + 1, label="inc"
        ).collect()
        assert (
            cluster.ledger.stages["inc"].tasks
            == reference.ledger.stages["inc"].tasks
        )

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_doomed_task_raises_for_every_backend(self, kind):
        from repro.cluster.costmodel import CostModel

        model = CostModel(task_failure_rate=1.0, task_max_attempts=2)
        cluster = SimCluster(
            n_workers=2, cost_model=model, executor=make_executor(kind, 2)
        )
        data = cluster.parallelize(list(range(8)), 4)
        with pytest.raises(TaskFailedError, match="task 0"):
            data.map(lambda x: x, label="doomed")


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork is POSIX-only")
class TestForkExecutor:
    def test_unpicklable_result_is_reported(self):
        ex = ForkProcessExecutor(jobs=2)
        with pytest.raises(RuntimeError, match="not picklable"):
            ex.map_tasks(lambda i, item: lambda: item, list(range(4)))

    def test_large_payload_does_not_deadlock(self):
        # Bigger than the 64 KiB pipe buffer: exercises the read-before-
        # reap ordering in _fork_and_gather.
        ex = ForkProcessExecutor(jobs=2)
        results = ex.map_tasks(lambda i, item: "x" * 300_000, list(range(4)))
        assert all(len(r) == 300_000 for r in results)
