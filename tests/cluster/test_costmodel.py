"""Tests for the simulated cost model and ledger."""

import numpy as np
import pytest

from repro.cluster.costmodel import (
    CostModel,
    SimulationLedger,
    estimate_bytes,
    timed_stage,
)

_MB = 1024 * 1024


class TestCostModel:
    def test_io_times(self):
        model = CostModel(disk_read_mb_s=100, disk_write_mb_s=50, network_mb_s=200)
        assert model.disk_read_time(100 * _MB) == pytest.approx(1.0)
        assert model.disk_write_time(100 * _MB) == pytest.approx(2.0)
        assert model.network_time(100 * _MB) == pytest.approx(0.5)

    def test_zero_bytes_cost_nothing(self):
        model = CostModel()
        assert model.disk_read_time(0) == 0.0
        assert model.network_time(0) == 0.0


class TestLedger:
    def test_record_and_clock(self):
        ledger = SimulationLedger()
        ledger.record_stage("a", wall_s=1.0, cpu_s=0.4, io_s=0.6, tasks=2)
        ledger.record_stage("a", wall_s=0.5, tasks=1)
        ledger.record_stage("b", wall_s=2.0)
        assert ledger.clock_s == pytest.approx(3.5)
        assert ledger.stage("a").wall_s == pytest.approx(1.5)
        assert ledger.stage("a").tasks == 3
        assert ledger.breakdown() == pytest.approx({"a": 1.5, "b": 2.0})

    def test_breakdown_preserves_execution_order(self):
        ledger = SimulationLedger()
        for label in ("z", "a", "m"):
            ledger.record_stage(label, wall_s=0.1)
        assert list(ledger.breakdown()) == ["z", "a", "m"]

    def test_merged_into(self):
        src, dst = SimulationLedger(), SimulationLedger()
        src.record_stage("x", wall_s=1.0, cpu_s=1.0)
        dst.record_stage("x", wall_s=0.5)
        src.merged_into(dst)
        assert dst.clock_s == pytest.approx(1.5)
        assert dst.stage("x").cpu_s == pytest.approx(1.0)


class TestTimedStage:
    def test_records_positive_time(self):
        ledger = SimulationLedger()
        with timed_stage(ledger, "work", cpu_scale=1.0):
            sum(range(10000))
        assert ledger.clock_s > 0
        assert ledger.stage("work").cpu_s == pytest.approx(ledger.clock_s)

    def test_cpu_scale_applies(self):
        fast, slow = SimulationLedger(), SimulationLedger()
        with timed_stage(slow, "w", cpu_scale=1.0) as t_slow:
            sum(range(200000))
        with timed_stage(fast, "w", cpu_scale=0.01) as t_fast:
            sum(range(200000))
        # Same work, 100x smaller charge (allow generous scheduling noise).
        assert t_fast.elapsed_s < t_slow.elapsed_s


class TestEstimateBytes:
    def test_numpy_array(self):
        assert estimate_bytes(np.zeros(10)) == 80

    def test_scalars_and_strings(self):
        assert estimate_bytes(5) == 8
        assert estimate_bytes(3.14) == 8
        assert estimate_bytes("abcd") == 4
        assert estimate_bytes(b"ab") == 2
        assert estimate_bytes(None) == 0

    def test_nested_structures(self):
        record = ("sig12", 7, np.zeros(4))
        assert estimate_bytes(record) == 5 + 8 + 32
        assert estimate_bytes([record, record]) == 2 * 45
        assert estimate_bytes({"k": 1}) == 1 + 8
