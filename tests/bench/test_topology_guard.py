"""Topology fencing: unlike serving shapes never get diffed.

A 1-shard p99 against a 4-shard p99 is not a regression signal in
either direction, so ``host_info`` records the sharded-serving shape
and ``compare_records`` refuses mismatches outright (a harness bug,
not a benchmark outcome) — same contract as comparing two different
benchmarks.
"""

from __future__ import annotations

import pytest

from repro.bench import answers_digest, compare_records, host_info, make_record


def _record(topology=None):
    return make_record(
        bench="serving",
        metrics={"p99_s": 0.05},
        accounting={"completed": 200},
        answers=answers_digest([[1, 2]]),
        host=host_info(topology=topology),
    )


def test_host_info_normalizes_topology():
    info = host_info(topology={"shards": "4", "replicas": 1, "pth": 6})
    assert info["topology"] == {"pth": 6, "replicas": 1, "shards": 4}
    assert all(isinstance(v, int) for v in info["topology"].values())


def test_host_info_without_topology_has_no_key():
    assert "topology" not in host_info()


def test_same_topology_compares():
    shape = {"shards": 3, "replicas": 1, "pth": 4}
    result = compare_records(_record(shape), _record(dict(shape)))
    assert result.ok


def test_mismatched_topology_refused():
    with pytest.raises(ValueError, match="topolog"):
        compare_records(
            _record({"shards": 1, "replicas": 0, "pth": 4}),
            _record({"shards": 4, "replicas": 0, "pth": 4}),
        )


def test_topology_vs_no_topology_refused():
    """A sharded record never diffs against a single-process one —
    absence of the block is itself a topology."""
    with pytest.raises(ValueError, match="topolog"):
        compare_records(
            _record(None), _record({"shards": 2, "replicas": 0, "pth": 4})
        )


def test_replica_count_alone_fences():
    """R changes failover cost, so R=0 vs R=1 runs are incomparable
    even at the same shard count."""
    with pytest.raises(ValueError, match="topolog"):
        compare_records(
            _record({"shards": 2, "replicas": 0, "pth": 4}),
            _record({"shards": 2, "replicas": 1, "pth": 4}),
        )
