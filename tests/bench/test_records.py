"""``repro.bench.records``: record construction, validation, digests."""

from __future__ import annotations

import os

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    answers_digest,
    host_info,
    make_record,
    validate_bench,
)


def _record(**overrides):
    kwargs = dict(
        bench="micro",
        metrics={"build_s": 0.5, "batch_knn_s": 0.1},
        accounting={"partitions": 12, "candidates": 900},
        answers=answers_digest([{"ids": [1, 2], "distances": [0.0, 1.5]}]),
        params={"series": 1200},
        repeats=3,
    )
    kwargs.update(overrides)
    return make_record(**kwargs)


def test_make_record_is_schema_tagged_and_valid():
    record = _record()
    assert record["schema"] == BENCH_SCHEMA
    assert validate_bench(record) == 2  # metric count
    assert record["bench"] == "micro"
    assert record["repeats"] == 3


def test_validate_rejects_wrong_schema():
    record = _record()
    record["schema"] = "repro.bench/v0"
    with pytest.raises(ValueError, match="schema"):
        validate_bench(record)


def test_validate_rejects_empty_metrics():
    record = _record()
    record["metrics"] = {}
    with pytest.raises(ValueError):
        validate_bench(record)


def test_validate_rejects_non_numeric_metric():
    record = _record()
    record["metrics"]["build_s"] = "fast"
    with pytest.raises(ValueError):
        validate_bench(record)


def test_validate_rejects_boolean_accounting():
    record = _record()
    record["accounting"]["partitions"] = True
    with pytest.raises(ValueError):
        validate_bench(record)


def test_validate_rejects_float_accounting():
    record = _record()
    record["accounting"]["partitions"] = 12.5
    with pytest.raises(ValueError):
        validate_bench(record)


def test_answers_digest_is_order_and_noise_stable():
    a = answers_digest({"ids": [3, 1], "distances": [0.123456701, 2.0]})
    # sub-rounding float jitter (beyond 6 decimals) digests identically
    b = answers_digest({"distances": [0.123456699, 2.0], "ids": [3, 1]})
    assert a == b
    assert a.startswith("sha256:")


def test_answers_digest_detects_real_drift():
    a = answers_digest({"ids": [3, 1]})
    b = answers_digest({"ids": [3, 2]})
    assert a != b


def test_host_info_records_count_and_affinity():
    host = host_info()
    assert host["cpu_count"] == os.cpu_count()
    assert host["cpu_affinity"] >= 1
    assert host["cpu_affinity"] <= host["cpu_count"]
    assert "jobs" not in host


def test_host_info_flags_oversubscription():
    cores = host_info()["cpu_affinity"]
    over = host_info(jobs=cores + 1)
    assert over["jobs"] == cores + 1
    assert over["oversubscribed"] is True
    under = host_info(jobs=cores)
    assert under["oversubscribed"] is False
