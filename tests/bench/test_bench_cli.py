"""End-to-end ``repro bench run/ingest/compare/history`` through the CLI."""

from __future__ import annotations

import copy
import json
import logging

import pytest

from repro.bench import TrajectoryStore, make_record
from repro.cli import main
from repro.telemetry import log


@pytest.fixture(autouse=True)
def _detach_cli_log_handler():
    """Drop the handler ``cli.main`` installs on the shared logger.

    Each ``main()`` call binds a stream handler to the *current*
    ``sys.stderr`` — under pytest that is a per-test capture object
    which gets closed at teardown.  Leaving it attached would poison
    later logging tests with emits into a closed stream.
    """
    yield
    if log._handler is not None:
        logging.getLogger(log.LOGGER_NAME).removeHandler(log._handler)
        log._handler = None


@pytest.fixture(scope="module")
def bench_workspace(tmp_path_factory):
    """One tiny ``bench run`` (record on disk + trajectory append)."""
    root = tmp_path_factory.mktemp("bench")
    out = root / "run.json"
    code = main([
        "bench", "run", "--suite", "micro", "--repeats", "1",
        "--series", "400", "--queries", "8", "--k", "3",
        "--dir", str(root / "trajectory"), "--out", str(out),
    ])
    assert code == 0
    return root, out


def test_run_writes_valid_record_with_attribution(bench_workspace, capsys):
    root, out = bench_workspace
    record = json.loads(out.read_text())
    assert record["schema"] == "repro.bench/v1"
    assert set(record["metrics"]) == {
        "build_s", "batch_knn_s", "exact_match_s",
    }
    assert record["answers"].startswith("sha256:")
    assert record["host"]["cpu_affinity"] >= 1
    # The attribution block must explain the counters-enabled kNN pass.
    attribution = record["attribution"]
    assert attribution["fraction"] > 0
    assert "exec_compute" in attribution["kernels"]


def test_run_appended_to_trajectory(bench_workspace):
    root, _out = bench_workspace
    store = TrajectoryStore(root / "trajectory")
    assert [p.name for p in store.history("micro")] == ["0001.json"]


def test_compare_same_run_exits_zero(bench_workspace, capsys):
    root, out = bench_workspace
    code = main(["bench", "compare", str(out), str(out)])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_compare_default_candidate_is_latest_trajectory_run(
    bench_workspace, capsys
):
    root, out = bench_workspace
    code = main([
        "bench", "compare", str(out), "--dir", str(root / "trajectory"),
        "--timing", "warn",
    ])
    assert code == 0


def test_compare_injected_accounting_regression_exits_nonzero(
    bench_workspace, tmp_path, capsys
):
    root, out = bench_workspace
    record = json.loads(out.read_text())
    record["accounting"]["candidates_examined"] += 1
    doctored = tmp_path / "regressed.json"
    doctored.write_text(json.dumps(record))
    code = main([
        "bench", "compare", str(out), str(doctored), "--timing", "warn",
    ])
    assert code == 1
    assert "FAIL" in capsys.readouterr().out


def test_compare_missing_baseline_is_an_error(tmp_path):
    with pytest.raises(SystemExit, match="cannot read baseline"):
        main(["bench", "compare", str(tmp_path / "nope.json")])


def test_compare_without_candidate_or_trajectory_is_an_error(
    bench_workspace, tmp_path
):
    _root, out = bench_workspace
    with pytest.raises(SystemExit, match="no trajectory runs"):
        main(["bench", "compare", str(out), "--dir", str(tmp_path)])


def test_ingest_unwraps_benchmark_reports(tmp_path, capsys):
    record = make_record(
        bench="parallel",
        metrics={"serial_batch_knn_s": 0.2},
        accounting={"partitions": 7},
    )
    report = tmp_path / "BENCH_parallel.json"
    report.write_text(json.dumps({"benchmark": "bench_parallel",
                                  "record": record}))
    code = main([
        "bench", "ingest", str(report), "--dir", str(tmp_path / "traj"),
    ])
    assert code == 0
    stored = TrajectoryStore(tmp_path / "traj").latest("parallel")
    assert stored["metrics"]["serial_batch_knn_s"] == 0.2


def test_ingest_rejects_invalid_report(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"benchmark": "x"}))
    with pytest.raises(SystemExit, match="cannot ingest"):
        main(["bench", "ingest", str(bad), "--dir", str(tmp_path / "t")])


def test_history_lists_runs_with_host_cores(bench_workspace, capsys):
    root, _out = bench_workspace
    code = main(["bench", "history", "--dir", str(root / "trajectory")])
    assert code == 0
    out = capsys.readouterr().out
    assert "micro: 1 run(s)" in out
    assert "0001.json" in out
    assert "cores" in out


def test_history_empty_dir_reports_nothing(tmp_path, capsys):
    assert main(["bench", "history", "--dir", str(tmp_path)]) == 0
    assert "no trajectory runs" in capsys.readouterr().out
