"""``repro.bench.compare``: the noise-tolerant regression gate.

The policy under test (docs/EXPERIMENTS.md, "Benchmark trajectory"):

* answers and accounting drift are **hard failures**, always — even
  under ``timing="warn"`` — because they mean the work changed, not
  the clock;
* timing regressions fail past ``fail_pct``, warn past ``warn_pct``,
  and improvements are informational;
* ``timing="warn"`` downgrades timing failures only (cross-host runs).
"""

from __future__ import annotations

import copy

import pytest

from repro.bench import answers_digest, compare_records, make_record


def _baseline():
    return make_record(
        bench="micro",
        metrics={"build_s": 1.0, "batch_knn_s": 0.10},
        accounting={"partitions": 12, "candidates_examined": 900},
        answers=answers_digest([[1, 2, 3]]),
        repeats=3,
    )


def _variant(**metric_overrides):
    record = copy.deepcopy(_baseline())
    record["metrics"].update(metric_overrides)
    return record


def test_identical_records_pass():
    result = compare_records(_baseline(), _baseline())
    assert result.ok
    assert result.exit_code == 0
    assert "PASS" in result.summary()


def test_timing_within_noise_passes():
    result = compare_records(_baseline(), _variant(build_s=1.05))
    assert result.ok
    assert not result.failures


def test_timing_in_warn_band_warns_but_passes():
    result = compare_records(
        _baseline(), _variant(build_s=1.2), warn_pct=10.0, fail_pct=30.0
    )
    assert result.ok
    assert result.warnings
    assert result.exit_code == 0


def test_timing_past_fail_threshold_fails():
    result = compare_records(
        _baseline(), _variant(build_s=1.5), warn_pct=10.0, fail_pct=30.0
    )
    assert not result.ok
    assert result.exit_code == 1
    assert any("build_s" in str(f) for f in result.failures)


def test_timing_improvement_is_informational():
    result = compare_records(_baseline(), _variant(build_s=0.5))
    assert result.ok
    assert not result.warnings


def test_warn_policy_downgrades_timing_failures():
    result = compare_records(
        _baseline(), _variant(build_s=2.0), timing="warn"
    )
    assert result.ok
    assert result.warnings


def test_accounting_drift_hard_fails_even_under_warn_policy():
    candidate = copy.deepcopy(_baseline())
    candidate["accounting"]["candidates_examined"] = 901
    result = compare_records(_baseline(), candidate, timing="warn")
    assert not result.ok
    assert any("candidates_examined" in str(f) for f in result.failures)


def test_answers_drift_hard_fails():
    candidate = copy.deepcopy(_baseline())
    candidate["answers"] = answers_digest([[1, 2, 4]])
    result = compare_records(_baseline(), candidate, timing="warn")
    assert not result.ok


def test_dropped_answers_digest_fails():
    candidate = copy.deepcopy(_baseline())
    del candidate["answers"]
    result = compare_records(_baseline(), candidate)
    assert not result.ok


def test_missing_metric_fails():
    candidate = copy.deepcopy(_baseline())
    del candidate["metrics"]["batch_knn_s"]
    result = compare_records(_baseline(), candidate)
    assert not result.ok


def test_new_metric_and_accounting_fields_are_informational():
    candidate = copy.deepcopy(_baseline())
    candidate["metrics"]["exact_match_s"] = 0.01
    candidate["accounting"]["new_counter"] = 7
    result = compare_records(_baseline(), candidate)
    assert result.ok


def test_bench_name_mismatch_raises():
    other = copy.deepcopy(_baseline())
    other["bench"] = "parallel"
    with pytest.raises(ValueError, match="bench"):
        compare_records(_baseline(), other)


def test_invalid_document_raises():
    broken = copy.deepcopy(_baseline())
    broken["metrics"] = {}
    with pytest.raises(ValueError):
        compare_records(broken, _baseline())


def test_bad_threshold_ordering_raises():
    with pytest.raises(ValueError):
        compare_records(
            _baseline(), _baseline(), warn_pct=50.0, fail_pct=10.0
        )


def test_bad_timing_policy_raises():
    with pytest.raises(ValueError):
        compare_records(_baseline(), _baseline(), timing="ignore")
