"""``repro.bench.trajectory``: append-only numbered run store."""

from __future__ import annotations

import json

import pytest

from repro.bench import TrajectoryStore, make_record


def _record(bench="micro", build_s=0.5):
    return make_record(
        bench=bench,
        metrics={"build_s": build_s},
        accounting={"partitions": 4},
    )


def test_append_numbers_runs_sequentially(tmp_path):
    store = TrajectoryStore(tmp_path)
    first = store.append(_record())
    second = store.append(_record(build_s=0.6))
    assert first.name == "0001.json"
    assert second.name == "0002.json"
    assert [p.name for p in store.history("micro")] == [
        "0001.json", "0002.json",
    ]


def test_benches_are_separate_directories(tmp_path):
    store = TrajectoryStore(tmp_path)
    store.append(_record(bench="micro"))
    store.append(_record(bench="parallel"))
    assert store.benches() == ["micro", "parallel"]
    assert len(store.history("micro")) == 1
    assert store.history("unknown") == []


def test_latest_returns_newest_record(tmp_path):
    store = TrajectoryStore(tmp_path)
    assert store.latest("micro") is None
    store.append(_record(build_s=0.5))
    store.append(_record(build_s=0.7))
    latest = store.latest("micro")
    assert latest["metrics"]["build_s"] == 0.7


def test_append_validates_before_writing(tmp_path):
    store = TrajectoryStore(tmp_path)
    bad = _record()
    bad["metrics"] = {}
    with pytest.raises(ValueError):
        store.append(bad)
    assert store.history("micro") == []


def test_load_validates_on_read(tmp_path):
    store = TrajectoryStore(tmp_path)
    path = store.append(_record())
    doc = json.loads(path.read_text())
    doc["schema"] = "bogus"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError):
        store.load(path)


def test_stray_files_are_ignored_by_history(tmp_path):
    store = TrajectoryStore(tmp_path)
    store.append(_record())
    (tmp_path / "micro" / "notes.txt").write_text("scratch")
    (tmp_path / "micro" / "12345.json").write_text("{}")
    assert [p.name for p in store.history("micro")] == ["0001.json"]
