"""Tests for dataset readers/writers (UCR, CSV, NPZ)."""

import numpy as np
import pytest

from repro.tsdb import random_walk
from repro.tsdb.io import (
    read_csv_dataset,
    read_npz_dataset,
    read_ucr,
    write_csv_dataset,
    write_npz_dataset,
)


class TestUcr:
    def test_comma_separated(self, tmp_path):
        path = tmp_path / "Coffee_TRAIN.txt"
        path.write_text("1,0.5,0.6,0.7\n2,1.5,1.6,1.7\n1,2.5,2.6,2.7\n")
        dataset, labels = read_ucr(path)
        assert len(dataset) == 3
        assert dataset.length == 3
        assert labels.tolist() == [1.0, 2.0, 1.0]
        assert dataset.name == "Coffee_TRAIN"
        np.testing.assert_allclose(dataset.values[1], [1.5, 1.6, 1.7])

    def test_whitespace_separated(self, tmp_path):
        path = tmp_path / "gun.txt"
        path.write_text(" 1  0.1 0.2\n-1  0.3 0.4\n")
        dataset, labels = read_ucr(path, name="GunPoint")
        assert labels.tolist() == [1.0, -1.0]
        assert dataset.name == "GunPoint"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_ucr(path)

    def test_ragged_rejected(self, tmp_path):
        path = tmp_path / "ragged.txt"
        path.write_text("1,0.5,0.6\n2,1.5\n")
        with pytest.raises(ValueError, match="not valid UCR"):
            read_ucr(path)

    def test_label_only_rows_rejected(self, tmp_path):
        path = tmp_path / "thin.txt"
        path.write_text("1\n2\n")
        with pytest.raises(ValueError, match="label plus"):
            read_ucr(path)


class TestCsv:
    def test_roundtrip_with_ids(self, tmp_path):
        original = random_walk(10, length=16, seed=3)
        path = tmp_path / "d.csv"
        write_csv_dataset(original, path)
        back = read_csv_dataset(path, has_record_ids=True)
        np.testing.assert_allclose(back.values, original.values, atol=1e-9)
        assert back.record_ids.tolist() == original.record_ids.tolist()

    def test_roundtrip_without_ids(self, tmp_path):
        original = random_walk(5, length=8, seed=4)
        path = tmp_path / "d.csv"
        write_csv_dataset(original, path, include_record_ids=False)
        back = read_csv_dataset(path)
        np.testing.assert_allclose(back.values, original.values, atol=1e-9)
        assert back.record_ids.tolist() == list(range(5))

    def test_tsv_delimiter(self, tmp_path):
        path = tmp_path / "d.tsv"
        path.write_text("0.1\t0.2\n0.3\t0.4\n")
        back = read_csv_dataset(path, delimiter="\t")
        assert back.values.shape == (2, 2)

    def test_ids_flag_requires_values(self, tmp_path):
        path = tmp_path / "only_ids.csv"
        path.write_text("0\n1\n")
        with pytest.raises(ValueError, match="no value columns"):
            read_csv_dataset(path, has_record_ids=True)


class TestNpz:
    def test_roundtrip(self, tmp_path):
        original = random_walk(7, length=12, seed=5)
        path = tmp_path / "d.npz"
        write_npz_dataset(original, path)
        back = read_npz_dataset(path)
        np.testing.assert_array_equal(back.values, original.values)
        assert back.name == original.name

    def test_index_build_from_file(self, tmp_path):
        """End-to-end: file → dataset → index → query."""
        from repro.core import TardisConfig, build_tardis_index, exact_match

        original = random_walk(500, length=32, seed=6).z_normalized()
        path = tmp_path / "d.npz"
        write_npz_dataset(original, path)
        dataset = read_npz_dataset(path)
        index = build_tardis_index(
            dataset, TardisConfig(g_max_size=100, l_max_size=10)
        )
        assert 3 in exact_match(index, dataset.values[3]).record_ids
