"""Tests for PAA: correctness and the lower-bounding distance property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tsdb.paa import paa_distance, paa_transform
from repro.tsdb.series import euclidean_distance

series32 = arrays(
    np.float64, 32, elements=st.floats(-100, 100, allow_nan=False, width=64)
)


class TestPaaTransform:
    def test_known_values(self):
        out = paa_transform(np.array([0.0, 2.0, 4.0, 6.0]), 2)
        assert out.tolist() == [1.0, 5.0]

    def test_identity_when_w_equals_n(self):
        values = np.arange(8.0)
        np.testing.assert_array_equal(paa_transform(values, 8), values)

    def test_single_segment_is_mean(self):
        values = np.arange(10.0)
        assert paa_transform(values, 1)[0] == pytest.approx(values.mean())

    def test_batch_matches_per_row(self):
        rng = np.random.default_rng(1)
        batch = rng.normal(size=(5, 16))
        whole = paa_transform(batch, 4)
        for i in range(5):
            np.testing.assert_allclose(whole[i], paa_transform(batch[i], 4))

    def test_fractional_boundaries(self):
        # n=3, w=2: segments cover [0,1.5) and [1.5,3).
        out = paa_transform(np.array([0.0, 0.0, 3.0]), 2)
        assert out.tolist() == [0.0, 2.0]

    def test_fractional_weights_partition_unity(self):
        from repro.tsdb.paa import _fractional_weights

        for n, w in [(10, 4), (30, 8), (7, 3), (13, 8)]:
            weights = _fractional_weights(n, w)
            # Each segment covers n/w time units...
            np.testing.assert_allclose(weights.sum(axis=1), n / w)
            # ...and every sample is fully covered exactly once.
            np.testing.assert_allclose(weights.sum(axis=0), 1.0)

    def test_fractional_weights_cache_is_frozen(self):
        """The cached weight matrix is shared by every PAA call with the
        same (n, w); mutating it in place must raise, not poison every
        subsequent transform."""
        from repro.tsdb.paa import _fractional_weights

        weights = _fractional_weights(10, 4)
        with pytest.raises(ValueError):
            weights[0, 0] = 7.0
        np.testing.assert_allclose(_fractional_weights(10, 4).sum(axis=0), 1.0)

    def test_fractional_constant_series(self):
        out = paa_transform(np.full(13, 2.5), 8)
        np.testing.assert_allclose(out, 2.5)

    def test_too_short_raises(self):
        with pytest.raises(ValueError, match="shorter"):
            paa_transform(np.zeros(3), 4)

    def test_nonpositive_word_length_raises(self):
        with pytest.raises(ValueError, match="positive"):
            paa_transform(np.zeros(8), 0)

    @given(series32)
    @settings(max_examples=60)
    def test_mean_is_preserved(self, values):
        # Segment means average back to the global mean for equal segments.
        assert paa_transform(values, 8).mean() == pytest.approx(
            values.mean(), abs=1e-9
        )


class TestPaaDistance:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            paa_distance(np.zeros(4), np.zeros(8), 32)

    @given(series32, series32)
    @settings(max_examples=80)
    def test_lower_bounds_euclidean(self, x, y):
        """The core pruning guarantee: PAA distance never exceeds ED."""
        for w in (1, 2, 4, 8, 16, 32):
            lb = paa_distance(paa_transform(x, w), paa_transform(y, w), 32)
            assert lb <= euclidean_distance(x, y) + 1e-7

    @given(series32, series32, st.integers(1, 31))
    @settings(max_examples=80)
    def test_lower_bound_holds_for_fractional_segments(self, x, y, w):
        """The Cauchy-Schwarz argument survives fractional boundaries."""
        lb = paa_distance(paa_transform(x, w), paa_transform(y, w), 32)
        assert lb <= euclidean_distance(x, y) + 1e-7

    @given(series32, series32)
    @settings(max_examples=40)
    def test_monotone_in_word_length(self, x, y):
        """Finer PAA gives an equal-or-tighter bound."""
        bounds = [
            paa_distance(paa_transform(x, w), paa_transform(y, w), 32)
            for w in (1, 2, 4, 8, 16, 32)
        ]
        for coarse, fine in zip(bounds, bounds[1:]):
            assert coarse <= fine + 1e-7
