"""Unit and property tests for the time series dataset model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tsdb.series import TimeSeriesDataset, euclidean_distance, z_normalize

finite_series = arrays(
    np.float64,
    st.integers(min_value=2, max_value=64),
    elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
)


class TestZNormalize:
    def test_known_values(self):
        out = z_normalize(np.array([1.0, 2.0, 3.0]))
        assert out == pytest.approx([-1.22474487, 0.0, 1.22474487])

    def test_constant_series_maps_to_zeros(self):
        assert z_normalize(np.full(10, 7.3)).tolist() == [0.0] * 10

    def test_batch_matches_per_row(self):
        rng = np.random.default_rng(0)
        batch = rng.normal(5, 3, size=(6, 20))
        whole = z_normalize(batch)
        for i in range(6):
            np.testing.assert_allclose(whole[i], z_normalize(batch[i]))

    def test_batch_with_constant_row(self):
        batch = np.vstack([np.arange(8.0), np.full(8, 2.0)])
        out = z_normalize(batch)
        assert out[1].tolist() == [0.0] * 8
        assert out[0].std() == pytest.approx(1.0)

    @given(finite_series)
    @settings(max_examples=60)
    def test_output_has_zero_mean_unit_std(self, values):
        out = z_normalize(values)
        assert abs(out.mean()) < 1e-7
        # Either a genuine normalization (std 1) or a flat series (all 0).
        assert out.std() == pytest.approx(1.0, abs=1e-7) or np.all(out == 0.0)

    @given(finite_series)
    @settings(max_examples=60)
    def test_idempotent(self, values):
        once = z_normalize(values)
        np.testing.assert_allclose(z_normalize(once), once, atol=1e-9)


class TestEuclideanDistance:
    def test_zero_for_identical(self):
        x = np.arange(5.0)
        assert euclidean_distance(x, x) == 0.0

    def test_known_value(self):
        assert euclidean_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            euclidean_distance(np.zeros(3), np.zeros(4))

    @given(finite_series)
    @settings(max_examples=40)
    def test_symmetry(self, values):
        other = values[::-1].copy()
        assert euclidean_distance(values, other) == pytest.approx(
            euclidean_distance(other, values)
        )


class TestTimeSeriesDataset:
    def test_default_record_ids(self):
        ds = TimeSeriesDataset(np.zeros((4, 8)))
        assert ds.record_ids.tolist() == [0, 1, 2, 3]

    def test_rejects_1d_values(self):
        with pytest.raises(ValueError, match="2-D"):
            TimeSeriesDataset(np.zeros(8))

    def test_rejects_mismatched_ids(self):
        with pytest.raises(ValueError, match="record_ids"):
            TimeSeriesDataset(np.zeros((4, 8)), record_ids=np.arange(3))

    def test_len_length_nbytes(self):
        ds = TimeSeriesDataset(np.zeros((4, 8)))
        assert len(ds) == 4
        assert ds.length == 8
        assert ds.nbytes == 4 * 8 * 8 + 4 * 8

    def test_iteration_yields_rid_series_pairs(self):
        values = np.arange(6.0).reshape(3, 2)
        ds = TimeSeriesDataset(values, record_ids=np.array([10, 20, 30]))
        pairs = list(ds)
        assert [rid for rid, _ in pairs] == [10, 20, 30]
        np.testing.assert_array_equal(pairs[2][1], [4.0, 5.0])

    def test_from_rows(self):
        ds = TimeSeriesDataset.from_rows([np.zeros(4), np.ones(4)], name="x")
        assert len(ds) == 2
        assert ds.name == "x"

    def test_subset_keeps_record_ids(self):
        ds = TimeSeriesDataset(np.arange(12.0).reshape(4, 3))
        sub = ds.subset(np.array([3, 1]))
        assert sub.record_ids.tolist() == [3, 1]
        np.testing.assert_array_equal(sub.values[0], ds.values[3])

    def test_series_lookup(self):
        ds = TimeSeriesDataset(np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(ds.series(1), [3.0, 4.0, 5.0])
        with pytest.raises(KeyError):
            ds.series(99)

    def test_z_normalized_copy_leaves_original(self):
        values = np.arange(8.0).reshape(2, 4)
        ds = TimeSeriesDataset(values.copy())
        normed = ds.z_normalized()
        np.testing.assert_array_equal(ds.values, values)
        assert abs(normed.values.mean(axis=1)).max() < 1e-9
