"""Tests for SAX breakpoints and symbols, especially the nesting property
that makes iSAX/iSAX-T cardinality reduction a pure bit operation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsdb.sax import (
    MAX_CARDINALITY_BITS,
    breakpoints,
    reduce_symbol,
    sax_symbols,
    symbol_bounds,
)


class TestBreakpoints:
    def test_counts(self):
        for bits in range(0, 8):
            assert len(breakpoints(bits)) == (1 << bits) - 1

    def test_one_bit_breakpoint_is_zero(self):
        assert breakpoints(1)[0] == pytest.approx(0.0)

    def test_two_bit_values(self):
        # Quartiles of the standard normal: ±0.6745 and 0.
        bps = breakpoints(2)
        assert bps[0] == pytest.approx(-0.67448975)
        assert bps[1] == pytest.approx(0.0)
        assert bps[2] == pytest.approx(0.67448975)

    def test_strictly_increasing(self):
        for bits in range(1, 9):
            bps = breakpoints(bits)
            assert np.all(np.diff(bps) > 0)

    def test_nesting(self):
        """Breakpoints at b-1 bits are the odd-indexed ones at b bits."""
        for bits in range(2, 9):
            fine = breakpoints(bits)
            coarse = breakpoints(bits - 1)
            np.testing.assert_allclose(coarse, fine[1::2], atol=1e-12)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            breakpoints(-1)
        with pytest.raises(ValueError):
            breakpoints(MAX_CARDINALITY_BITS + 1)

    def test_cached_array_is_frozen(self):
        """The lru-cached array is shared by every caller; in-place
        mutation must raise instead of silently corrupting every later
        SAX conversion."""
        bps = breakpoints(4)
        with pytest.raises(ValueError):
            bps[0] = 99.0
        with pytest.raises(ValueError):
            bps += 1.0
        # The cache stayed clean.
        assert breakpoints(4)[0] == pytest.approx(bps[0])

    def test_frozen_copy_is_writable(self):
        bps = breakpoints(3).copy()
        bps[0] = 42.0  # a copy must not inherit the freeze
        assert breakpoints(3)[0] != 42.0


class TestSaxSymbols:
    def test_symbol_range(self):
        values = np.linspace(-4, 4, 101)
        for bits in (1, 2, 3, 6):
            symbols = sax_symbols(values, bits)
            assert symbols.min() >= 0
            assert symbols.max() <= (1 << bits) - 1

    def test_monotone_in_value(self):
        values = np.linspace(-4, 4, 101)
        symbols = sax_symbols(values, 4)
        assert np.all(np.diff(symbols.astype(int)) >= 0)

    def test_value_on_breakpoint_goes_up(self):
        # 0.0 is the 1-bit breakpoint; it belongs to the upper stripe.
        assert sax_symbols(np.array([0.0]), 1)[0] == 1

    def test_extreme_values(self):
        assert sax_symbols(np.array([-100.0]), 3)[0] == 0
        assert sax_symbols(np.array([100.0]), 3)[0] == 7

    @given(
        st.floats(-8, 8, allow_nan=False),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=150)
    def test_bit_drop_equals_recompute(self, value, bits):
        """The nesting property: truncating LSBs == re-discretizing."""
        fine = int(sax_symbols(np.array([value]), bits)[0])
        for lower in range(1, bits + 1):
            coarse = int(sax_symbols(np.array([value]), lower)[0])
            assert reduce_symbol(fine, bits, lower) == coarse

    @given(st.floats(-8, 8, allow_nan=False), st.integers(1, 9))
    @settings(max_examples=100)
    def test_value_falls_in_symbol_bounds(self, value, bits):
        symbol = int(sax_symbols(np.array([value]), bits)[0])
        lower, upper = symbol_bounds(symbol, bits)
        assert lower <= value < upper or value == upper == np.inf


class TestSymbolBounds:
    def test_extremes_are_infinite(self):
        lower, _ = symbol_bounds(0, 3)
        _, upper = symbol_bounds(7, 3)
        assert lower == -np.inf
        assert upper == np.inf

    def test_adjacent_symbols_share_boundary(self):
        for bits in (1, 2, 4):
            for symbol in range((1 << bits) - 1):
                _, upper = symbol_bounds(symbol, bits)
                lower, _ = symbol_bounds(symbol + 1, bits)
                assert upper == lower

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            symbol_bounds(4, 2)
        with pytest.raises(ValueError):
            symbol_bounds(-1, 2)


class TestReduceSymbol:
    def test_identity(self):
        assert reduce_symbol(5, 3, 3) == 5

    def test_drop_to_one_bit(self):
        assert reduce_symbol(0b1101, 4, 1) == 1
        assert reduce_symbol(0b0101, 4, 1) == 0

    def test_increase_raises(self):
        with pytest.raises(ValueError):
            reduce_symbol(1, 2, 3)
