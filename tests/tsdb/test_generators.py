"""Tests for the synthetic dataset generators (Fig. 9 substrate)."""

import numpy as np
import pytest

from repro.metrics import signature_distribution
from repro.tsdb.generators import (
    DATASET_GENERATORS,
    dna_like,
    make_dataset,
    noaa_like,
    random_walk,
    sift_like,
)

ALL = [random_walk, sift_like, dna_like, noaa_like]


class TestCommonContract:
    @pytest.mark.parametrize("generator", ALL)
    def test_shape_and_count(self, generator):
        ds = generator(50)
        assert len(ds) == 50
        assert ds.values.ndim == 2

    @pytest.mark.parametrize("generator", ALL)
    def test_z_normalized_output(self, generator):
        ds = generator(30)
        means = ds.values.mean(axis=1)
        stds = ds.values.std(axis=1)
        assert np.abs(means).max() < 1e-8
        assert np.allclose(stds, 1.0, atol=1e-6)

    @pytest.mark.parametrize("generator", ALL)
    def test_deterministic_given_seed(self, generator):
        a = generator(20, seed=5)
        b = generator(20, seed=5)
        np.testing.assert_array_equal(a.values, b.values)

    @pytest.mark.parametrize("generator", ALL)
    def test_different_seeds_differ(self, generator):
        a = generator(20, seed=1)
        b = generator(20, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_paper_native_lengths(self):
        assert random_walk(3).length == 256
        assert sift_like(3).length == 128
        assert dna_like(3).length == 192
        assert noaa_like(3).length == 64


class TestRegistry:
    def test_keys(self):
        assert set(DATASET_GENERATORS) == {"Rw", "Tx", "Dn", "Na"}

    def test_make_dataset(self):
        ds = make_dataset("Na", 10)
        assert ds.name == "Noaa"
        assert len(ds) == 10

    def test_make_dataset_custom_seed(self):
        a = make_dataset("Rw", 10, seed=3)
        b = make_dataset("Rw", 10, seed=3)
        np.testing.assert_array_equal(a.values, b.values)

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("Xx", 10)


class TestSkewSpectrum:
    """The generators must reproduce Fig. 9's skew ordering."""

    def test_noaa_most_skewed_randomwalk_least(self):
        ginis = {
            key: signature_distribution(make_dataset(key, 3000), bits=2).gini
            for key in DATASET_GENERATORS
        }
        assert ginis["Na"] > ginis["Tx"]
        assert ginis["Na"] > ginis["Dn"]
        assert ginis["Dn"] >= ginis["Rw"] - 0.02
        assert ginis["Na"] > ginis["Rw"] + 0.15

    def test_dna_has_repeats(self):
        """Windows from one genome must produce duplicated coarse shapes."""
        dist = signature_distribution(dna_like(3000), bits=2)
        assert dist.n_distinct < 3000
