"""Tests for subsequence/window extraction."""

import numpy as np
import pytest

from repro.tsdb.windows import (
    non_overlapping_windows,
    sliding_windows,
    window_offset,
)


class TestSlidingWindows:
    def test_counts_and_offsets(self):
        ds = sliding_windows(np.arange(10.0), window=4, step=2)
        assert len(ds) == 4
        assert ds.record_ids.tolist() == [0, 2, 4, 6]

    def test_step_one_dense(self):
        ds = sliding_windows(np.arange(8.0), window=3, step=1)
        assert len(ds) == 6
        assert ds.record_ids.tolist() == list(range(6))

    def test_windows_match_source_shape(self):
        rng = np.random.default_rng(0)
        recording = rng.standard_normal(100)
        ds = sliding_windows(recording, window=10, step=7)
        for rid, row in ds:
            raw = recording[rid : rid + 10]
            normalized = (raw - raw.mean()) / raw.std()
            np.testing.assert_allclose(row, normalized, atol=1e-9)

    def test_windows_are_z_normalized(self):
        ds = sliding_windows(np.cumsum(np.ones(50)), window=10, step=5)
        # A linear ramp normalizes identically in every window.
        for row in ds.values:
            assert abs(row.mean()) < 1e-9

    def test_exact_fit(self):
        ds = sliding_windows(np.arange(4.0), window=4)
        assert len(ds) == 1

    def test_errors(self):
        with pytest.raises(ValueError, match="1-D"):
            sliding_windows(np.zeros((3, 3)), window=2)
        with pytest.raises(ValueError, match="positive"):
            sliding_windows(np.zeros(10), window=0)
        with pytest.raises(ValueError, match="positive"):
            sliding_windows(np.zeros(10), window=4, step=0)
        with pytest.raises(ValueError, match="shorter"):
            sliding_windows(np.zeros(3), window=4)

    def test_name_propagates(self):
        ds = sliding_windows(np.arange(10.0), window=5, name="abc")
        assert ds.name == "abc"


class TestNonOverlapping:
    def test_disjoint_segmentation(self):
        ds = non_overlapping_windows(np.arange(12.0), window=4)
        assert len(ds) == 3
        assert ds.record_ids.tolist() == [0, 4, 8]

    def test_remainder_dropped(self):
        ds = non_overlapping_windows(np.arange(10.0), window=4)
        assert len(ds) == 2  # last 2 points do not fill a window


class TestWindowOffset:
    def test_identity(self):
        assert window_offset(42) == 42
