"""Tests for the character-level iSAX word used by the baseline."""

import numpy as np
import pytest

from repro.tsdb.isax import ISaxWord, isax_from_paa, isax_from_series


class TestISaxWordValidation:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            ISaxWord((1, 0), (1,))

    def test_symbol_too_large_raises(self):
        with pytest.raises(ValueError):
            ISaxWord((4,), (2,))

    def test_negative_bits_raise(self):
        with pytest.raises(ValueError):
            ISaxWord((0,), (-1,))

    def test_zero_bit_segment_allowed(self):
        word = ISaxWord((0, 1), (0, 1))
        assert word.bits == (0, 1)

    def test_hashable(self):
        a = ISaxWord((1, 0), (1, 1))
        b = ISaxWord((1, 0), (1, 1))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestCovers:
    def test_exact_same_word(self):
        word = ISaxWord((1, 0, 1), (1, 1, 1))
        assert word.covers(word)

    def test_coarse_covers_fine(self):
        coarse = ISaxWord((1, 0), (1, 1))
        fine = ISaxWord((0b10, 0b01), (2, 2))
        assert coarse.covers(fine)
        assert not fine.covers(coarse)  # fine cannot cover coarse

    def test_mismatch_not_covered(self):
        coarse = ISaxWord((1, 0), (1, 1))
        other = ISaxWord((0b01, 0b01), (2, 2))  # 1st segment prefix 0 != 1
        assert not coarse.covers(other)

    def test_zero_bits_covers_anything(self):
        universal = ISaxWord((0, 0), (0, 0))
        assert universal.covers(ISaxWord((3, 1), (2, 2)))

    def test_word_length_mismatch(self):
        assert not ISaxWord((1,), (1,)).covers(ISaxWord((1, 1), (1, 1)))


class TestSplitChild:
    def test_appends_bit(self):
        word = ISaxWord((0b1, 0b0), (1, 1))
        child = word.split_child(0, 1)
        assert child.symbols == (0b11, 0b0)
        assert child.bits == (2, 1)

    def test_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            ISaxWord((0,), (1,)).split_child(0, 2)

    def test_parent_covers_both_children(self):
        word = ISaxWord((0b10, 0b01), (2, 2))
        for bit in (0, 1):
            child = word.split_child(1, bit)
            # Re-express the child at full width and check coverage.
            assert word.covers(child)


class TestConversion:
    def test_from_paa(self):
        word = isax_from_paa(np.array([-2.0, -0.1, 0.1, 2.0]), 2)
        assert word.bits == (2, 2, 2, 2)
        assert word.symbols[0] == 0  # far below
        assert word.symbols[3] == 3  # far above

    def test_from_series_pipeline(self):
        values = np.concatenate([np.full(16, -3.0), np.full(16, 3.0)])
        word = isax_from_series(values, 4, 1)
        assert word.symbols == (0, 0, 1, 1)

    def test_str_rendering(self):
        word = ISaxWord((0b01, 0b1), (2, 1))
        assert str(word) == "[01_2, 1_1]"

    def test_str_zero_bits(self):
        assert str(ISaxWord((0,), (0,))) == "[*]"
