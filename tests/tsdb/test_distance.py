"""Tests for distance functions and the MINDIST lower bounds.

``test_mindist_lower_bounds_euclidean`` is the single most important
property in the repository: if it fails, every pruning step in TARDIS and
the baseline can silently drop true nearest neighbors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tsdb.distance import (
    batch_euclidean,
    euclidean,
    mindist_paa_to_word,
    mindist_word_to_word,
    squared_euclidean,
    word_region_bounds,
)
from repro.tsdb.paa import paa_transform
from repro.tsdb.sax import sax_symbols
from repro.tsdb.series import z_normalize

series32 = arrays(
    np.float64, 32, elements=st.floats(-50, 50, allow_nan=False, width=64)
)


class TestBasicDistances:
    def test_squared_vs_plain(self):
        x, y = np.array([1.0, 2.0]), np.array([4.0, 6.0])
        assert squared_euclidean(x, y) == 25.0
        assert euclidean(x, y) == 5.0

    def test_batch_matches_loop(self):
        rng = np.random.default_rng(3)
        q = rng.normal(size=16)
        cands = rng.normal(size=(10, 16))
        batch = batch_euclidean(q, cands)
        for i in range(10):
            assert batch[i] == pytest.approx(euclidean(q, cands[i]))

    def test_batch_single_row(self):
        q = np.zeros(4)
        out = batch_euclidean(q, np.ones(4))
        assert out.shape == (1,)
        assert out[0] == pytest.approx(2.0)


class TestWordRegionBounds:
    def test_zero_bits_covers_everything(self):
        lower, upper = word_region_bounds(np.zeros(4, dtype=int), 0)
        assert np.all(np.isinf(lower)) and np.all(lower < 0)
        assert np.all(np.isinf(upper)) and np.all(upper > 0)

    def test_bounds_bracket_symbols(self):
        symbols = np.array([0, 1, 2, 3])
        lower, upper = word_region_bounds(symbols, 2)
        assert np.all(lower < upper)
        assert lower[0] == -np.inf
        assert upper[3] == np.inf


class TestMindistPaaToWord:
    def test_zero_when_word_matches(self):
        """A series' own word always yields a zero lower bound."""
        rng = np.random.default_rng(5)
        x = z_normalize(rng.normal(size=32))
        paa = paa_transform(x, 8)
        for bits in (1, 2, 4):
            symbols = sax_symbols(paa, bits)
            assert mindist_paa_to_word(paa, symbols, bits, 32) == 0.0

    @given(series32, series32, st.integers(1, 6))
    @settings(max_examples=120)
    def test_mindist_lower_bounds_euclidean(self, q, x, bits):
        q, x = z_normalize(q), z_normalize(x)
        # Includes word lengths that do NOT divide 32: the fractional-PAA
        # path must preserve the bound too.
        for w in (4, 7, 8, 13, 16):
            q_paa = paa_transform(q, w)
            x_symbols = sax_symbols(paa_transform(x, w), bits)
            bound = mindist_paa_to_word(q_paa, x_symbols, bits, 32)
            assert bound <= euclidean(q, x) + 1e-7

    @given(series32, series32)
    @settings(max_examples=50)
    def test_monotone_in_cardinality(self, q, x):
        """Higher cardinality gives an equal-or-tighter (larger) bound."""
        q, x = z_normalize(q), z_normalize(x)
        q_paa = paa_transform(q, 8)
        x_paa = paa_transform(x, 8)
        bounds = [
            mindist_paa_to_word(q_paa, sax_symbols(x_paa, bits), bits, 32)
            for bits in range(1, 7)
        ]
        for coarse, fine in zip(bounds, bounds[1:]):
            assert coarse <= fine + 1e-9


class TestMindistWordToWord:
    @given(series32, series32, st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=120)
    def test_lower_bounds_euclidean(self, x, y, bits_x, bits_y):
        x, y = z_normalize(x), z_normalize(y)
        sx = sax_symbols(paa_transform(x, 8), bits_x)
        sy = sax_symbols(paa_transform(y, 8), bits_y)
        bound = mindist_word_to_word(sx, bits_x, sy, bits_y, 32)
        assert bound <= euclidean(x, y) + 1e-7

    def test_zero_for_same_word(self):
        symbols = np.array([1, 2, 3, 0])
        assert mindist_word_to_word(symbols, 2, symbols, 2, 32) == 0.0

    def test_weaker_than_paa_bound(self):
        """Word-word bound cannot beat the PAA-word bound on the same pair."""
        rng = np.random.default_rng(6)
        for _ in range(20):
            q = z_normalize(rng.normal(size=32))
            x = z_normalize(rng.normal(size=32))
            q_paa = paa_transform(q, 8)
            sx = sax_symbols(paa_transform(x, 8), 3)
            sq = sax_symbols(q_paa, 3)
            ww = mindist_word_to_word(sq, 3, sx, 3, 32)
            pw = mindist_paa_to_word(q_paa, sx, 3, 32)
            assert ww <= pw + 1e-9
