"""Tests for the shared evaluation harness."""

import math

import pytest

from repro.experiments.harness import (
    KNN_METHOD_ORDER,
    build_dpisax_with_report,
    build_tardis_with_report,
    evaluate_exact_match,
    evaluate_knn,
)
from repro.experiments.scale import active_profile
from repro.experiments.workloads import (
    dataset_with_heldout_queries,
    exact_match_workload,
)


@pytest.fixture(scope="module")
def small_world():
    dataset, queries = dataset_with_heldout_queries("Rw", 2000, 10, seed=3)
    dataset = dataset.z_normalized()
    tardis, trep = build_tardis_with_report(dataset)
    dpisax, brep = build_dpisax_with_report(dataset)
    return dataset, queries, tardis, trep, dpisax, brep


class TestConstructionReports:
    def test_phase_sums_cover_total(self, small_world):
        _ds, _q, _t, trep, _d, brep = small_world
        for rep in (trep, brep):
            assert rep.total_s > 0
            assert rep.global_s + rep.local_s == pytest.approx(
                rep.total_s, rel=1e-6
            )

    def test_sizes_and_partitions(self, small_world):
        _ds, _q, _t, trep, _d, brep = small_world
        assert trep.n_partitions >= 1
        assert brep.n_partitions >= 1
        assert trep.global_index_nbytes > brep.global_index_nbytes  # Fig. 13a

    def test_system_labels(self, small_world):
        _ds, _q, _t, trep, _d, brep = small_world
        assert trep.system == "TARDIS"
        assert brep.system == "Baseline"


class TestExactMatchEvaluation:
    def test_all_systems_full_recall(self, small_world):
        dataset, _q, tardis, _tr, dpisax, _br = small_world
        workload = exact_match_workload(dataset, 20)
        for index, bloom in ((tardis, True), (tardis, False), (dpisax, True)):
            rep = evaluate_exact_match(index, workload, use_bloom=bloom)
            assert rep.recall == 1.0
            assert rep.n_queries == 20
            assert rep.avg_time_s > 0

    def test_bloom_reduces_loads(self, small_world):
        dataset, _q, tardis, _tr, _d, _br = small_world
        workload = exact_match_workload(dataset, 20)
        with_bf = evaluate_exact_match(tardis, workload, use_bloom=True)
        without = evaluate_exact_match(tardis, workload, use_bloom=False)
        assert with_bf.partition_loads < without.partition_loads
        assert with_bf.avg_time_s < without.avg_time_s
        assert with_bf.system == "Tardis-BF"
        assert without.system == "Tardis-NoBF"


class TestKnnEvaluation:
    def test_reports_for_all_methods(self, small_world):
        dataset, queries, tardis, _tr, dpisax, _br = small_world
        reports = evaluate_knn(
            dataset, queries[:5], 5, tardis=tardis, dpisax=dpisax
        )
        assert [r.method for r in reports] == list(KNN_METHOD_ORDER)
        for report in reports:
            assert 0.0 <= report.recall <= 1.0
            assert report.error_ratio >= 1.0 or math.isnan(report.error_ratio)
            assert report.avg_time_s > 0
            assert report.n_queries == 5

    def test_method_requires_matching_index(self, small_world):
        dataset, queries, tardis, _tr, _d, _br = small_world
        with pytest.raises(ValueError, match="DPiSAX"):
            evaluate_knn(dataset, queries[:1], 3, tardis=tardis,
                         methods=("baseline",))
        with pytest.raises(ValueError, match="TARDIS"):
            evaluate_knn(dataset, queries[:1], 3, methods=("target-node",))


class TestScaleProfile:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_profile().name == "quick"

    def test_full_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert active_profile().name == "full"

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            active_profile()

    def test_configs_constructible(self):
        profile = active_profile()
        assert profile.tardis_config().word_length == 8
        assert profile.dpisax_config().cardinality_bits == 9
