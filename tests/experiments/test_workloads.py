"""Tests for query-workload generation."""

import numpy as np
import pytest

from repro.experiments.workloads import (
    dataset_with_heldout_queries,
    exact_match_workload,
)
from repro.tsdb import random_walk


class TestExactMatchWorkload:
    def test_present_absent_split(self):
        ds = random_walk(500, length=64).z_normalized()
        queries = exact_match_workload(ds, 40, absent_fraction=0.5)
        present = [q for q in queries if q.present]
        absent = [q for q in queries if not q.present]
        assert len(present) == 20
        assert len(absent) == 20

    def test_present_queries_are_dataset_rows(self):
        ds = random_walk(200, length=64).z_normalized()
        queries = exact_match_workload(ds, 20)
        for q in queries:
            if q.present:
                np.testing.assert_array_equal(q.values, ds.series(q.record_id))

    def test_absent_queries_not_in_dataset(self):
        ds = random_walk(200, length=64).z_normalized()
        queries = exact_match_workload(ds, 30)
        for q in queries:
            if not q.present:
                assert not any(
                    np.array_equal(q.values, row) for row in ds.values
                )
                assert q.record_id is None

    def test_full_absent_fraction(self):
        ds = random_walk(100, length=64).z_normalized()
        queries = exact_match_workload(ds, 10, absent_fraction=1.0)
        assert all(not q.present for q in queries)

    def test_invalid_fraction(self):
        ds = random_walk(10, length=64)
        with pytest.raises(ValueError):
            exact_match_workload(ds, 5, absent_fraction=1.5)

    def test_deterministic(self):
        ds = random_walk(100, length=64).z_normalized()
        a = exact_match_workload(ds, 10, seed=5)
        b = exact_match_workload(ds, 10, seed=5)
        for qa, qb in zip(a, b):
            np.testing.assert_array_equal(qa.values, qb.values)
            assert qa.present == qb.present


class TestHeldoutQueries:
    def test_sizes(self):
        ds, queries = dataset_with_heldout_queries("Rw", 300, 25)
        assert len(ds) == 300
        assert queries.shape[0] == 25
        assert queries.shape[1] == ds.length

    def test_queries_not_in_dataset(self):
        ds, queries = dataset_with_heldout_queries("Na", 200, 10)
        for q in queries:
            assert not any(np.array_equal(q, row) for row in ds.values)

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            dataset_with_heldout_queries("Nope", 10, 2)

    def test_custom_seed_changes_data(self):
        a, _ = dataset_with_heldout_queries("Rw", 50, 2, seed=1)
        b, _ = dataset_with_heldout_queries("Rw", 50, 2, seed=2)
        assert not np.array_equal(a.values, b.values)
