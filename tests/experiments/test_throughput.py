"""Tests for the concurrent-workload queueing simulator."""

import numpy as np
import pytest

from repro.core import knn_multi_partitions_access, knn_target_node_access
from repro.experiments.throughput import STRATEGY_TASKS, simulate_workload


class TestSimulateWorkload:
    def test_basic_fields(self, tardis_small, heldout_queries):
        result = simulate_workload(
            tardis_small, heldout_queries[:10], knn_target_node_access,
            "target-node", k=5,
        )
        assert result.n_queries == 10
        assert result.makespan_s > 0
        assert result.throughput_qps == pytest.approx(10 / result.makespan_s)
        assert result.mean_latency_s <= result.makespan_s
        assert result.p95_latency_s <= result.makespan_s + 1e-12

    def test_more_workers_never_slower(self, tardis_small, heldout_queries):
        queries = heldout_queries[:12]
        few = simulate_workload(
            tardis_small, queries, knn_multi_partitions_access,
            "mpa", k=5, n_workers=2,
        )
        many = simulate_workload(
            tardis_small, queries, knn_multi_partitions_access,
            "mpa", k=5, n_workers=16,
        )
        assert many.makespan_s <= few.makespan_s + 1e-9

    def test_mpa_costs_more_total_work(self, tardis_small, heldout_queries):
        """MPA does strictly more *work* per query; its makespan may still
        beat TNA's because that work spreads over more workers — so the
        assertion is on total simulated work, not the schedule length."""
        queries = heldout_queries[:10]
        tna_work = sum(
            knn_target_node_access(tardis_small, q, 5).simulated_seconds
            for q in queries
        )
        mpa_work = sum(
            knn_multi_partitions_access(tardis_small, q, 5).simulated_seconds
            for q in queries
        )
        assert mpa_work > tna_work

    def test_empty_workload_rejected(self, tardis_small):
        with pytest.raises(ValueError, match="empty"):
            simulate_workload(
                tardis_small, np.zeros((0, 64)), knn_target_node_access,
                "tna",
            )

    def test_single_query_latency_equals_makespan(self, tardis_small,
                                                  heldout_queries):
        result = simulate_workload(
            tardis_small, heldout_queries[:1], knn_target_node_access,
            "tna", k=5,
        )
        assert result.mean_latency_s == pytest.approx(result.makespan_s)

    def test_registry_names(self):
        assert set(STRATEGY_TASKS()) == {
            "target-node", "one-partition", "multi-partitions",
        }
