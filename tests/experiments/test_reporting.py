"""Tests for benchmark table rendering."""

import pytest

from repro.experiments.reporting import banner, fmt_bytes, fmt_seconds, render_table


class TestFormatting:
    def test_fmt_seconds_scales(self):
        assert fmt_seconds(0.0012) == "1.20 ms"
        assert fmt_seconds(2.5) == "2.50 s"
        assert fmt_seconds(120) == "2.0 min"
        assert fmt_seconds(float("nan")) == "n/a"

    def test_fmt_bytes_scales(self):
        assert fmt_bytes(12) == "12 B"
        assert fmt_bytes(2048) == "2.0 KB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.0 MB"
        assert fmt_bytes(5 * 1024**3) == "5.0 GB"


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(
            ["name", "value"],
            [["alpha", 1], ["b", 22]],
            title="Demo",
        )
        lines = out.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].startswith("alpha")
        # Columns align: 'value' column starts at the same offset everywhere.
        offset = lines[1].index("value")
        assert lines[3][offset - 2 : offset] == "  "

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_banner_contains_text(self):
        out = banner("Figure 10")
        assert "Figure 10" in out
        assert out.count("=") >= 120
