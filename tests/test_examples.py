"""Smoke tests: every example script runs to completion.

Examples are the library's executable documentation; these tests keep
them runnable.  They take tens of seconds total and exercise the public
API end to end, so they double as integration coverage.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"
