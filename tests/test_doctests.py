"""Run the usage examples embedded in docstrings as doctests."""

import doctest

import pytest

import repro.core.isaxt
import repro.tsdb.paa
import repro.tsdb.series
import repro.tsdb.windows

MODULES = [
    repro.tsdb.series,
    repro.tsdb.paa,
    repro.tsdb.windows,
    repro.core.isaxt,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
