"""Cross-system integration tests: TARDIS and the baseline side by side on
one dataset, checking the paper's qualitative claims end to end."""

import numpy as np
import pytest

from repro.baseline import exact_match_baseline, knn_baseline
from repro.core import (
    brute_force_knn,
    exact_match,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.metrics import error_ratio, recall
from repro.tsdb import noaa_like


class TestExactMatchParity:
    """Both systems must agree exactly on membership questions."""

    def test_agreement_on_present_queries(self, tardis_small, dpisax_small,
                                          rw_small):
        rng = np.random.default_rng(0)
        for row in rng.choice(len(rw_small), size=25, replace=False):
            q = rw_small.values[row]
            t = exact_match(tardis_small, q)
            b = exact_match_baseline(dpisax_small, q)
            assert sorted(t.record_ids) == sorted(b.record_ids)
            assert row in t.record_ids

    def test_agreement_on_absent_queries(self, tardis_small, dpisax_small,
                                         rw_small):
        rng = np.random.default_rng(1)
        from repro.tsdb.series import z_normalize

        for i in range(15):
            ghost = z_normalize(rw_small.values[i] + rng.normal(0, 0.05, 64))
            assert exact_match(tardis_small, ghost).record_ids == []
            assert exact_match_baseline(dpisax_small, ghost).record_ids == []


class TestAccuracyOrdering:
    """Fig. 15's ordering: baseline < TNA < OPA < MPA in recall, reversed
    in error ratio (on average)."""

    @pytest.fixture(scope="class")
    def quality(self, tardis_small, dpisax_small, rw_small, heldout_queries):
        k = 10
        rows = {name: {"recall": [], "err": []} for name in
                ("baseline", "tna", "opa", "mpa")}
        for q in heldout_queries[:20]:
            truth = brute_force_knn(rw_small, q, k)
            truth_ids = [n.record_id for n in truth]
            truth_d = [n.distance for n in truth]

            runs = {
                "baseline": knn_baseline(dpisax_small, q, k),
                "tna": knn_target_node_access(tardis_small, q, k),
                "opa": knn_one_partition_access(tardis_small, q, k),
                "mpa": knn_multi_partitions_access(tardis_small, q, k),
            }
            for name, result in runs.items():
                ids = result.record_ids
                dists = result.distances
                rows[name]["recall"].append(recall(ids, truth_ids))
                depth = min(len(dists), k)
                rows[name]["err"].append(
                    error_ratio(dists[:depth], truth_d[:depth])
                )
        return {
            name: {
                "recall": float(np.mean(v["recall"])),
                "err": float(np.mean(v["err"])),
            }
            for name, v in rows.items()
        }

    def test_recall_ordering(self, quality):
        assert quality["baseline"]["recall"] <= quality["mpa"]["recall"]
        assert quality["tna"]["recall"] <= quality["opa"]["recall"] + 0.05
        assert quality["opa"]["recall"] <= quality["mpa"]["recall"] + 0.05

    def test_error_ratio_ordering(self, quality):
        assert quality["mpa"]["err"] <= quality["baseline"]["err"] + 1e-6
        assert quality["mpa"]["err"] <= quality["opa"]["err"] + 1e-6
        assert quality["opa"]["err"] <= quality["tna"]["err"] + 1e-6

    def test_all_error_ratios_at_least_one(self, quality):
        for name in quality:
            assert quality[name]["err"] >= 1.0 - 1e-9


class TestSkewedDatasetRobustness:
    """The whole pipeline must behave on the most skewed dataset (Noaa)."""

    @pytest.fixture(scope="class")
    def noaa_world(self, small_config, small_baseline_config):
        from repro.baseline import build_dpisax_index
        from repro.core import build_tardis_index

        ds = noaa_like(2500, seed=8)
        tardis = build_tardis_index(ds, small_config)
        dpisax = build_dpisax_index(ds, small_baseline_config)
        return ds, tardis, dpisax

    def test_all_records_indexed(self, noaa_world):
        ds, tardis, dpisax = noaa_world
        t_total = sum(p.n_records for p in tardis.partitions.values())
        b_total = sum(p.n_records for p in dpisax.partitions.values())
        assert t_total == len(ds)
        assert b_total == len(ds)

    def test_queries_work(self, noaa_world):
        ds, tardis, dpisax = noaa_world
        q = ds.values[17]
        assert 17 in exact_match(tardis, q).record_ids
        assert 17 in exact_match_baseline(dpisax, q).record_ids
        result = knn_multi_partitions_access(tardis, q, 5)
        assert result.neighbors[0].record_id == 17

    def test_duplicate_heavy_leaves_survive(self, noaa_world):
        """Noaa's near-duplicate series force deep cascading splits and
        overflow leaves; the trees must stay structurally valid."""
        _ds, tardis, _dpisax = noaa_world
        for partition in tardis.partitions.values():
            partition.tree.validate()
