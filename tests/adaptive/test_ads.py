"""Tests for the ADS adaptive index."""

import numpy as np
import pytest

from repro.adaptive import AdsConfig, build_ads_index
from repro.core import brute_force_knn
from repro.tsdb import random_walk
from repro.tsdb.series import z_normalize


@pytest.fixture()
def dataset():
    return random_walk(2000, length=64, seed=9).z_normalized()


@pytest.fixture()
def ads(dataset):
    return build_ads_index(dataset, AdsConfig(leaf_threshold=40))


def _query(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return z_normalize(np.cumsum(rng.standard_normal(64)))


class TestConstruction:
    def test_no_splits_at_build_time(self, ads):
        assert ads.total_splits == 0
        assert ads.n_nodes() == 1  # nothing refined yet

    def test_nothing_materialized_at_build_time(self, ads):
        assert ads.materialized_fraction() == 0.0

    def test_build_cheaper_than_tardis(self, dataset):
        from repro.core import TardisConfig, build_tardis_index

        ads = build_ads_index(dataset)
        tardis = build_tardis_index(
            dataset, TardisConfig(g_max_size=300, l_max_size=30)
        )
        assert (
            ads.construction_ledger.clock_s
            < tardis.construction_ledger.clock_s
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdsConfig(leaf_threshold=0)
        with pytest.raises(ValueError):
            AdsConfig(cardinality_bits=0)


class TestAdaptiveBehaviour:
    def test_first_query_pays_splits(self, ads, dataset):
        first = ads.exact_match(dataset.values[0])
        assert first.splits_performed > 0

    def test_repeat_query_pays_nothing_extra(self, ads, dataset):
        q = dataset.values[1]
        ads.exact_match(q)
        again = ads.exact_match(q)
        assert again.splits_performed == 0
        assert again.leaves_materialized == 0

    def test_refinement_is_local(self, ads, dataset):
        """A handful of exact-match queries must not materialize the
        whole dataset — only the touched leaves."""
        for row in (0, 10, 20):
            ads.exact_match(dataset.values[row])
        assert 0 < ads.materialized_fraction() < 0.5

    def test_leaf_threshold_respected_on_query_path(self, ads, dataset):
        result = ads.exact_match(dataset.values[5])
        assert result.candidates_examined <= ads.config.leaf_threshold or (
            result.splits_performed == 0
        )


class TestQueries:
    def test_exact_match_finds_members(self, ads, dataset):
        for row in (0, 999, 1999):
            result = ads.exact_match(dataset.values[row])
            assert row in result.record_ids

    def test_exact_match_rejects_absent(self, ads, dataset):
        rng = np.random.default_rng(1)
        ghost = z_normalize(dataset.values[0] + rng.normal(0, 0.1, 64))
        assert ads.exact_match(ghost).record_ids == []

    def test_knn_self_query(self, ads, dataset):
        result = ads.knn_approximate(dataset.values[3], 1)
        assert result.record_ids == [3]
        assert result.distances[0] == 0.0

    def test_knn_sorted_k_results(self, ads):
        result = ads.knn_approximate(_query(2), 10)
        assert len(result.record_ids) == 10
        assert result.distances == sorted(result.distances)

    def test_knn_distances_true(self, ads, dataset):
        q = _query(3)
        result = ads.knn_approximate(q, 5)
        for rid, dist in zip(result.record_ids, result.distances):
            true = float(np.linalg.norm(q - dataset.series(rid)))
            assert dist == pytest.approx(true)

    def test_knn_reasonable_recall(self, ads, dataset):
        recalls = []
        for seed in range(10):
            q = _query(seed + 100)
            result = ads.knn_approximate(q, 10)
            truth = {n.record_id for n in brute_force_knn(dataset, q, 10)}
            recalls.append(len(set(result.record_ids) & truth) / 10)
        assert float(np.mean(recalls)) > 0.1

    def test_invalid_k(self, ads):
        with pytest.raises(ValueError):
            ads.knn_approximate(_query(0), 0)


class TestWarmup:
    def test_query_cost_amortizes(self, ads, dataset):
        """ADS's signature behaviour: early queries are expensive (splits +
        materialization), later ones cheap."""
        rng = np.random.default_rng(7)
        rows = rng.choice(len(dataset), size=60, replace=False)
        times = [
            ads.exact_match(dataset.values[row]).simulated_seconds
            for row in rows
        ]
        early = float(np.mean(times[:15]))
        late = float(np.mean(times[-15:]))
        assert late < early
