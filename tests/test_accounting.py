"""Cross-checks of the query accounting fields against the ledger.

Every query strategy reports ``partitions_loaded``, the ids behind it,
and node visit/prune counts.  These numbers feed the benchmark figures
and the telemetry counters, so they must agree with the ground truth the
simulation ledger records: one ``query/load partition*`` task per
partition actually fetched, regardless of strategy or cache state.
"""

import numpy as np
import pytest

from repro.core import (
    TardisConfig,
    build_tardis_index,
    exact_match,
    knn_exact,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
    range_query,
)
from repro.tsdb import random_walk
from repro.tsdb.series import z_normalize

#: Ledger labels charged by TardisIndex.load_partition / the MPA batch
#: load.  Everything starting with this prefix is a partition fetch.
LOAD_PREFIX = "query/load partition"


def ledger_loads(result) -> int:
    """Partition-load tasks the ledger actually recorded."""
    return sum(
        stats.tasks
        for label, stats in result.ledger.stages.items()
        if label.startswith(LOAD_PREFIX)
    )


def assert_consistent(result, index) -> None:
    """The accounting contract shared by every strategy."""
    assert result.partitions_loaded == len(result.partition_ids_loaded)
    assert result.partitions_loaded == ledger_loads(result)
    assert len(set(result.partition_ids_loaded)) == len(result.partition_ids_loaded)
    assert all(pid in index.partitions for pid in result.partition_ids_loaded)


KNN_STRATEGIES = {
    "target-node": knn_target_node_access,
    "one-partition": knn_one_partition_access,
    "multi-partitions": knn_multi_partitions_access,
    "knn-exact": knn_exact,
}


@pytest.mark.parametrize("name", sorted(KNN_STRATEGIES))
def test_knn_accounting_matches_ledger(name, tardis_small, heldout_queries):
    fn = KNN_STRATEGIES[name]
    for query in heldout_queries[:5]:
        result = fn(tardis_small, query, 10)
        assert_consistent(result, tardis_small)
        assert result.partitions_loaded >= 1
        assert result.nodes_visited > 0
        assert result.nodes_pruned >= 0
        assert result.candidates_examined >= len(result.neighbors)


def test_range_accounting_matches_ledger(tardis_small, heldout_queries):
    for query in heldout_queries[:5]:
        result = range_query(tardis_small, query, radius=8.0)
        assert_consistent(result, tardis_small)
        # Even a miss visits the partitions whose bound beat the radius.
        assert result.nodes_visited + result.nodes_pruned > 0


def test_exact_match_accounting_matches_ledger(tardis_small, rw_small):
    hit = exact_match(tardis_small, rw_small.values[7])
    assert_consistent(hit, tardis_small)
    assert hit.partitions_loaded == 1
    assert hit.nodes_visited >= 1  # at least the Tardis-L root on descent

    rng = np.random.default_rng(77)
    ghost = z_normalize(rw_small.values[7] + rng.normal(0, 0.1, 64))
    miss = exact_match(tardis_small, ghost)
    assert_consistent(miss, tardis_small)
    if miss.bloom_rejected:
        assert miss.partitions_loaded == 0
        assert miss.nodes_visited == 0


def test_batch_exact_match_accounting(tardis_small, rw_small, heldout_queries):
    """Batch results carry the same accounting contract as interactive
    ones: loaded-partition ids, node visits, and a ledger whose
    partition-load tasks match ``partitions_loaded`` (the shared group
    load is amortized as one batch-shared task per query)."""
    from repro.core.batch import batch_exact_match

    queries = np.vstack([rw_small.values[:6], heldout_queries[:6]])
    report = batch_exact_match(tardis_small, queries)
    assert len(report.results) == len(queries)
    for i, result in enumerate(report.results):
        assert_consistent(result, tardis_small)
        if result.bloom_rejected:
            assert result.partitions_loaded == 0
        else:
            assert result.partitions_loaded == 1
            assert result.nodes_visited >= 1
            assert result.simulated_seconds > 0
        if i < 6:  # present rows must be found, matching interactive
            interactive = exact_match(tardis_small, queries[i])
            assert result.record_ids == interactive.record_ids


def test_batch_knn_accounting(tardis_small, heldout_queries):
    from repro.core.batch import batch_knn_target_node
    from repro.core.queries import knn_target_node_access

    queries = heldout_queries[:8]
    report = batch_knn_target_node(tardis_small, queries, k=5)
    assert len(report.results) == len(queries)
    for i, result in enumerate(report.results):
        assert_consistent(result, tardis_small)
        assert result.strategy == "target-node"
        assert result.partitions_loaded == 1
        assert result.nodes_visited >= 1
        assert result.candidates_examined >= len(result.neighbors)
        assert result.simulated_seconds > 0
        interactive = knn_target_node_access(tardis_small, queries[i], 5)
        assert result.record_ids == interactive.record_ids
        assert result.nodes_visited == interactive.nodes_visited
        assert result.partition_ids_loaded == interactive.partition_ids_loaded


def test_batch_amortized_load_totals_one_partition(tardis_small, rw_small):
    """Across a group, the per-query amortized load shares sum to the
    group's single load — the batch never bills a partition twice."""
    from repro.core.batch import batch_knn_target_node

    queries = rw_small.values[:10]
    report = batch_knn_target_node(tardis_small, queries, k=3)
    by_pid: dict[int, float] = {}
    for result in report.results:
        pid = result.partition_ids_loaded[0]
        share = sum(
            stats.io_s
            for label, stats in result.ledger.stages.items()
            if label.startswith(LOAD_PREFIX)
        )
        by_pid[pid] = by_pid.get(pid, 0.0) + share
    # Each touched partition's shares reassemble one load (io_s equals the
    # group's load io, so totals across queries equal per-pid load costs).
    assert report.partitions_loaded == len(by_pid)
    assert all(total > 0 for total in by_pid.values())


def test_accounting_consistent_with_cache_enabled():
    """Cached loads still count as loads, in both the result and ledger."""
    dataset = random_walk(600, length=64, seed=5).z_normalized()
    index = build_tardis_index(
        dataset, TardisConfig(g_max_size=100, l_max_size=20, pth=4)
    )
    index.enable_cache(capacity_partitions=8)
    query = dataset.values[3]
    cold = knn_multi_partitions_access(index, query, 5)
    warm = knn_multi_partitions_access(index, query, 5)
    for result in (cold, warm):
        assert_consistent(result, index)
    assert warm.partition_ids_loaded == cold.partition_ids_loaded
    stats = index.cache_stats()
    assert stats["hits"] > 0
    # Warm loads are free on the simulated clock but never unaccounted.
    assert warm.simulated_seconds <= cold.simulated_seconds
