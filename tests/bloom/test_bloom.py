"""Tests for the Bloom filter: the no-false-negative guarantee is what
keeps TARDIS exact-match queries correct."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom import BloomFilter


class TestConstruction:
    def test_with_capacity_sizing(self):
        bf = BloomFilter.with_capacity(1000, fp_rate=0.01)
        # Optimal: m ~ 9.6 n, k ~ 7 for p = 1%.
        assert 9000 <= bf.n_bits <= 10500
        assert 6 <= bf.n_hashes <= 8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(10, fp_rate=1.5)
        with pytest.raises(ValueError):
            BloomFilter(n_bits=0, n_hashes=1)
        with pytest.raises(ValueError):
            BloomFilter(n_bits=8, n_hashes=0)

    def test_nbytes(self):
        bf = BloomFilter(n_bits=80, n_hashes=3)
        assert bf.nbytes == 10


class TestMembership:
    def test_empty_filter_contains_nothing(self):
        bf = BloomFilter.with_capacity(100)
        assert "anything" not in bf

    def test_added_items_found(self):
        bf = BloomFilter.with_capacity(100)
        for item in ("a", "bb", "ccc"):
            bf.add(item)
        assert "a" in bf and "bb" in bf and "ccc" in bf

    def test_bytes_and_str_are_distinct_apis(self):
        bf = BloomFilter.with_capacity(10)
        bf.add(b"\x01\x02")
        assert b"\x01\x02" in bf

    @given(st.lists(st.text(min_size=1, max_size=20), max_size=80))
    @settings(max_examples=60)
    def test_never_false_negative(self, items):
        """The load-bearing property: added items are always reported."""
        bf = BloomFilter.with_capacity(max(1, len(items)))
        for item in items:
            bf.add(item)
        for item in items:
            assert item in bf

    def test_false_positive_rate_near_target(self):
        bf = BloomFilter.with_capacity(2000, fp_rate=0.01)
        for i in range(2000):
            bf.add(f"member-{i}")
        false_hits = sum(
            f"absent-{i}" in bf for i in range(10000)
        )
        assert false_hits / 10000 < 0.03  # 3x headroom over the 1% target

    def test_estimated_fp_rate_tracks_fill(self):
        bf = BloomFilter.with_capacity(500, fp_rate=0.01)
        assert bf.estimated_fp_rate() == 0.0
        for i in range(500):
            bf.add(str(i))
        assert 0.0 < bf.estimated_fp_rate() < 0.05


class TestItemCount:
    def test_add_is_idempotent_in_count(self):
        """Re-adding an item must not inflate n_items (the docstring's
        'idempotent' promise covers the count, not just the bits)."""
        bf = BloomFilter.with_capacity(100)
        bf.add("dup")
        bits_after_first = bf.bits.copy()
        for _ in range(10):
            bf.add("dup")
        assert bf.n_items == 1
        assert (bf.bits == bits_after_first).all()

    def test_distinct_items_counted(self):
        bf = BloomFilter.with_capacity(100)
        for i in range(50):
            bf.add(f"item-{i}")
        assert bf.n_items == 50

    def test_duplicate_heavy_insert_counts_distinct(self):
        """The TARDIS pattern: every record in a leaf re-adds the same
        signature."""
        bf = BloomFilter.with_capacity(200)
        for i in range(300):
            bf.add(f"sig-{i % 3}")
        assert bf.n_items == 3


class TestUnion:
    def test_union_contains_both_sides(self):
        a = BloomFilter(n_bits=1024, n_hashes=4)
        b = BloomFilter(n_bits=1024, n_hashes=4)
        a.add("left")
        b.add("right")
        merged = a.union(b)
        assert "left" in merged and "right" in merged
        assert merged.n_items == 2

    def test_union_geometry_mismatch_raises(self):
        a = BloomFilter(n_bits=1024, n_hashes=4)
        b = BloomFilter(n_bits=512, n_hashes=4)
        with pytest.raises(ValueError, match="geometry"):
            a.union(b)

    def test_union_does_not_double_count_shared_items(self):
        """Summing the operands' counts over-reports overlap; the union
        estimates distinct items from the merged fill instead."""
        a = BloomFilter(n_bits=4096, n_hashes=4)
        b = BloomFilter(n_bits=4096, n_hashes=4)
        for i in range(20):
            a.add(f"shared-{i}")
            b.add(f"shared-{i}")
        merged = a.union(b)
        assert merged.n_items == 20  # not 40

    def test_union_count_close_for_disjoint_sides(self):
        a = BloomFilter(n_bits=8192, n_hashes=4)
        b = BloomFilter(n_bits=8192, n_hashes=4)
        for i in range(30):
            a.add(f"left-{i}")
            b.add(f"right-{i}")
        merged = a.union(b)
        # Sparse fill keeps the cardinality estimator near-exact.
        assert abs(merged.n_items - 60) <= 2

    def test_union_of_empty_filters(self):
        a = BloomFilter(n_bits=256, n_hashes=3)
        b = BloomFilter(n_bits=256, n_hashes=3)
        assert a.union(b).n_items == 0
