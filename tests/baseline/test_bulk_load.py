"""Tests for iSAX 2.0-style two-phase bulk loading of the iBT."""

import numpy as np
import pytest

from repro.baseline.ibt import IbtTree
from repro.tsdb.isax import isax_from_series
from repro.tsdb.series import z_normalize

W, BITS, LENGTH = 4, 4, 32


def entries(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    values = z_normalize(np.cumsum(rng.standard_normal((n, LENGTH)), axis=1))
    return [
        (isax_from_series(values[i], W, BITS), i, values[i]) for i in range(n)
    ]


def incremental(data, threshold=4) -> IbtTree:
    tree = IbtTree(W, BITS, threshold)
    for entry in data:
        tree.insert(entry)
    return tree


def bulk(data, threshold=4) -> IbtTree:
    tree = IbtTree(W, BITS, threshold)
    tree.bulk_load(data)
    return tree


class TestBulkLoad:
    def test_same_shape_as_incremental(self):
        data = entries(200, seed=1)
        a, b = incremental(data), bulk(data)
        assert a.n_nodes() == b.n_nodes()
        assert a.depth_histogram() == b.depth_histogram()

    def test_every_entry_present_with_payload(self):
        data = entries(100, seed=2)
        tree = bulk(data)
        collected = tree.entries_under(tree.root)
        assert sorted(e[1] for e in collected) == list(range(100))
        assert all(e[2] is not None for e in collected)

    def test_entries_findable(self):
        data = entries(80, seed=3)
        tree = bulk(data)
        for word, rid, _values in data:
            leaf = tree.descend(word)
            assert any(e[1] == rid for e in leaf.entries)

    def test_counts_match(self):
        data = entries(150, seed=4)
        tree = bulk(data)
        assert tree.root.count == 150
        tree.validate()

    def test_rejects_non_empty_tree(self):
        data = entries(5)
        tree = incremental(data[:2])
        with pytest.raises(RuntimeError, match="empty"):
            tree.bulk_load(data)

    def test_empty_bulk_load(self):
        tree = IbtTree(W, BITS, 4)
        tree.bulk_load([])
        assert tree.root.count == 0

    def test_binary_root_mode(self):
        data = entries(120, seed=5)
        tree = IbtTree(W, BITS, 10, binary_root=True)
        tree.bulk_load(data)
        assert tree.root.count == 120
        assert len(tree.root.children) <= 2
        collected = tree.entries_under(tree.root)
        assert len(collected) == 120
