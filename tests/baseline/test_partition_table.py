"""Tests for the DPiSAX partition table and its lookup strategies."""

import pytest

from repro.baseline.partition_table import PartitionTable
from repro.tsdb.isax import ISaxWord


def full_word(*symbols, bits=4) -> ISaxWord:
    return ISaxWord(tuple(symbols), (bits,) * len(symbols))


@pytest.fixture
def table() -> PartitionTable:
    t = PartitionTable(word_length=2)
    t.add(ISaxWord((0, 0), (1, 1)), 0)       # covers low/low
    t.add(ISaxWord((0b01, 1), (2, 1)), 1)    # finer region
    t.add(ISaxWord((1, 0b11), (1, 2)), 2)
    return t


class TestAdd:
    def test_duplicate_key_rejected(self, table):
        with pytest.raises(ValueError, match="duplicate"):
            table.add(ISaxWord((0, 0), (1, 1)), 9)

    def test_word_length_mismatch(self, table):
        with pytest.raises(ValueError, match="length"):
            table.add(ISaxWord((0,), (1,)), 9)

    def test_len_and_patterns(self, table):
        assert len(table) == 3
        assert table.n_patterns == 3  # three distinct bit-width patterns


class TestLookup:
    def test_covered_word_found(self, table):
        # (0b0011, 0b0010) -> prefixes (0, 0) at 1 bit: table key 0 covers.
        assert table.lookup(full_word(0b0011, 0b0010)) == 0

    def test_finer_key_matches(self, table):
        # (0b0111, 0b1010): segment prefixes (0b01, 1) -> key 1.
        assert table.lookup(full_word(0b0111, 0b1010)) == 1

    def test_uncovered_returns_none(self, table):
        # (1, 0b00..) = (high, low) at (1,2)-bits (1, 0b00): no key covers.
        assert table.lookup(full_word(0b1000, 0b0100)) is None

    def test_grouped_lookup_agrees_with_faithful(self, table):
        words = [
            full_word(a, b)
            for a in (0b0000, 0b0101, 0b1010, 0b1111)
            for b in (0b0001, 0b0110, 0b1011, 0b1110)
        ]
        for word in words:
            assert table.lookup(word) == table.lookup_grouped(word)


class TestRoute:
    def test_route_prefers_exact_cover(self, table):
        assert table.route(full_word(0b0011, 0b0010)) == 0

    def test_route_falls_back_to_nearest(self, table):
        pid = table.route(full_word(0b1000, 0b0100))
        assert pid in (0, 1, 2)

    def test_route_deterministic(self, table):
        word = full_word(0b1000, 0b0100)
        assert table.route(word) == table.route(word)

    def test_empty_table_raises(self):
        empty = PartitionTable(word_length=2)
        with pytest.raises(RuntimeError, match="empty"):
            empty.route(full_word(0, 0))


class TestSizing:
    def test_nbytes_scales_with_entries(self, table):
        small = table.nbytes()
        table.add(ISaxWord((0b10, 0b10), (2, 2)), 3)
        assert table.nbytes() > small
