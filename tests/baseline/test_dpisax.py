"""End-to-end tests for the DPiSAX baseline build and queries."""

import numpy as np
import pytest

from repro.baseline import (
    DpisaxConfig,
    build_dpisax_index,
    convert_records_baseline,
    exact_match_baseline,
    knn_baseline,
)
from repro.core import brute_force_knn
from repro.tsdb import random_walk
from repro.tsdb.series import z_normalize


class TestConvert:
    def test_full_cardinality_words(self):
        config = DpisaxConfig()
        ds = random_walk(4, length=64).z_normalized()
        out = convert_records_baseline([(i, row) for i, (_r, row) in enumerate(ds)], config)
        word, rid, ts = out[0]
        assert word.bits == (config.cardinality_bits,) * config.word_length
        assert rid == 0
        assert ts.shape == (64,)

    def test_empty(self):
        assert convert_records_baseline([], DpisaxConfig()) == []


class TestBuild:
    def test_every_record_indexed_once(self, dpisax_small, rw_small):
        seen = []
        for partition in dpisax_small.partitions.values():
            seen.extend(
                e[1] for e in partition.tree.entries_under(partition.tree.root)
            )
        assert sorted(seen) == sorted(rw_small.record_ids.tolist())

    def test_partitions_match_table(self, dpisax_small):
        assert len(dpisax_small.partitions) == len(dpisax_small.table)

    def test_routing_consistency(self, dpisax_small):
        """Entries sit in the partition the table routes them to."""
        for pid, partition in dpisax_small.partitions.items():
            entries = partition.tree.entries_under(partition.tree.root)
            for word, _rid, _ts in entries[:20]:
                assert dpisax_small.table.route(word) == pid

    def test_ledger_phases(self, dpisax_small):
        labels = set(dpisax_small.construction_ledger.breakdown())
        assert {
            "global/sample+convert",
            "global/build index tree",
            "global/partition assignment",
            "local/read data",
            "local/convert data",
            "local/shuffle",
            "local/build index",
        } <= labels

    def test_indivisible_length_supported(self):
        ds = random_walk(300, length=30, seed=3).z_normalized()
        config = DpisaxConfig(word_length=8, g_max_size=100, l_max_size=10)
        index = build_dpisax_index(ds, config)
        assert sum(p.n_records for p in index.partitions.values()) == 300

    def test_too_short_series_rejected(self):
        ds = random_walk(10, length=4)
        with pytest.raises(ValueError, match="shorter"):
            build_dpisax_index(ds, DpisaxConfig(word_length=8))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DpisaxConfig(cardinality_bits=0)
        with pytest.raises(ValueError):
            DpisaxConfig(sampling_fraction=0.0)
        with pytest.raises(ValueError):
            DpisaxConfig(g_max_size=0)


class TestExactMatch:
    def test_present_found(self, dpisax_small, rw_small):
        for row in (0, 55, 2999):
            result = exact_match_baseline(dpisax_small, rw_small.values[row])
            assert row in result.record_ids

    def test_absent_still_loads_partition(self, dpisax_small, rw_small):
        """No Bloom filter: absent queries pay the partition load."""
        rng = np.random.default_rng(0)
        ghost = z_normalize(rw_small.values[0] + rng.normal(0, 0.1, 64))
        result = exact_match_baseline(dpisax_small, ghost)
        assert result.record_ids == []
        assert result.partitions_loaded == 1
        assert result.simulated_seconds > 0


class TestKnn:
    def test_returns_k_sorted(self, dpisax_small, heldout_queries):
        result = knn_baseline(dpisax_small, heldout_queries[0], 10)
        assert len(result.record_ids) == 10
        assert result.distances == sorted(result.distances)

    def test_self_query_found(self, dpisax_small, rw_small):
        result = knn_baseline(dpisax_small, rw_small.values[9], 1)
        assert result.record_ids == [9]
        assert result.distances[0] == 0.0

    def test_distances_true_euclidean(self, dpisax_small, rw_small,
                                      heldout_queries):
        result = knn_baseline(dpisax_small, heldout_queries[1], 5)
        for rid, dist in zip(result.record_ids, result.distances):
            true = float(np.linalg.norm(heldout_queries[1] - rw_small.series(rid)))
            assert dist == pytest.approx(true)

    def test_recall_below_tardis_mpa(self, dpisax_small, tardis_small,
                                     rw_small, heldout_queries):
        """The paper's accuracy headline at the smallest scale."""
        from repro.core import knn_multi_partitions_access
        from repro.metrics import recall

        k = 10
        base, mpa = [], []
        for q in heldout_queries[:15]:
            truth = [n.record_id for n in brute_force_knn(rw_small, q, k)]
            base.append(recall(knn_baseline(dpisax_small, q, k).record_ids, truth))
            mpa.append(
                recall(
                    knn_multi_partitions_access(tardis_small, q, k).record_ids,
                    truth,
                )
            )
        assert float(np.mean(mpa)) > float(np.mean(base))

    def test_unclustered_rejected(self, rw_small, small_baseline_config):
        index = build_dpisax_index(
            rw_small, small_baseline_config, clustered=False
        )
        with pytest.raises(RuntimeError, match="clustered"):
            knn_baseline(index, rw_small.values[0], 3)
