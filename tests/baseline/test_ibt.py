"""Tests for the iSAX Binary Tree (iBT) baseline structure."""

import numpy as np
import pytest

from repro.baseline.ibt import IbtTree
from repro.tsdb.isax import ISaxWord, isax_from_series
from repro.tsdb.series import z_normalize

W, BITS, LENGTH = 4, 4, 32


def make_word(symbols) -> ISaxWord:
    return ISaxWord(tuple(symbols), (BITS,) * W)


def random_entries(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    values = z_normalize(np.cumsum(rng.standard_normal((n, LENGTH)), axis=1))
    return [
        (isax_from_series(values[i], W, BITS), i, values[i]) for i in range(n)
    ]


def make_tree(threshold=3, policy="stats", binary_root=False) -> IbtTree:
    return IbtTree(
        word_length=W,
        max_bits=BITS,
        split_threshold=threshold,
        split_policy=policy,
        binary_root=binary_root,
    )


class TestConstruction:
    def test_invalid_policy(self):
        with pytest.raises(ValueError, match="policy"):
            make_tree(policy="magic")

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            IbtTree(word_length=W, max_bits=BITS, split_threshold=0)

    def test_wrong_cardinality_entry_rejected(self):
        tree = make_tree()
        word = ISaxWord((1, 1, 1, 1), (1, 1, 1, 1))
        with pytest.raises(ValueError, match="cardinality"):
            tree.insert((word, 0, None))


class TestClassicInsertion:
    def test_counts_and_containment(self):
        entries = random_entries(100)
        tree = make_tree(threshold=5)
        for entry in entries:
            tree.insert(entry)
        assert tree.root.count == 100
        assert sum(len(l.entries) for l in tree.leaves()) == 100
        tree.validate()

    def test_first_level_is_one_bit(self):
        entries = random_entries(30)
        tree = make_tree(threshold=5)
        for entry in entries:
            tree.insert(entry)
        for child in tree.root.children.values():
            assert child.word.bits == (1,) * W

    def test_every_entry_findable_via_descend(self):
        entries = random_entries(150, seed=1)
        tree = make_tree(threshold=4)
        for entry in entries:
            tree.insert(entry)
        for word, rid, _ts in entries:
            leaf = tree.descend(word)
            assert leaf.is_leaf
            assert any(e[1] == rid for e in leaf.entries)

    def test_overflow_leaf_at_max_bits(self):
        tree = make_tree(threshold=2)
        word = make_word((3, 7, 9, 12))
        for i in range(6):
            tree.insert((word, i, None))
        leaf = tree.descend(word)
        assert len(leaf.entries) == 6  # cannot split identical full words

    def test_binary_fanout_below_first_level(self):
        entries = random_entries(200, seed=2)
        tree = make_tree(threshold=3)
        for entry in entries:
            tree.insert(entry)
        for node in tree.iter_nodes():
            if node is not tree.root:
                assert len(node.children) <= 2

    def test_path_is_prefix_chain(self):
        entries = random_entries(80, seed=3)
        tree = make_tree(threshold=3)
        for entry in entries:
            tree.insert(entry)
        word = entries[0][0]
        path = tree.path(word)
        assert path[0] is tree.root
        for parent, child in zip(path, path[1:]):
            assert child.parent is parent


class TestSplitPolicies:
    @pytest.mark.parametrize("policy", ["round-robin", "stats"])
    def test_both_policies_preserve_entries(self, policy):
        entries = random_entries(120, seed=4)
        tree = make_tree(threshold=4, policy=policy)
        for entry in entries:
            tree.insert(entry)
        assert sum(len(l.entries) for l in tree.leaves()) == 120
        tree.validate()

    def test_stats_policy_no_worse_depth_than_round_robin(self):
        """iSAX 2.0's motivation: statistics splits avoid the round-robin
        policy's excessive subdivision (compare node counts)."""
        entries = random_entries(400, seed=5)
        trees = {}
        for policy in ("round-robin", "stats"):
            tree = make_tree(threshold=10, policy=policy)
            for entry in entries:
                tree.insert(entry)
            trees[policy] = tree.n_nodes()
        assert trees["stats"] <= trees["round-robin"] * 1.5


class TestBinaryRootMode:
    def test_root_splits_binarily(self):
        entries = random_entries(50, seed=6)
        tree = make_tree(threshold=10, binary_root=True)
        for entry in entries:
            tree.insert(entry)
        assert len(tree.root.children) <= 2
        assert sum(len(l.entries) for l in tree.leaves()) == 50

    def test_leaf_sizes_track_threshold(self):
        """binary_root leaves stay near the capacity instead of scattering
        over 2^w first-level nodes."""
        entries = random_entries(300, seed=7)
        tree = make_tree(threshold=40, binary_root=True)
        for entry in entries:
            tree.insert(entry)
        sizes = [len(l.entries) for l in tree.leaves() if l.entries]
        assert np.mean(sizes) > 10  # not scattered into tiny leaves

    def test_entries_findable(self):
        entries = random_entries(60, seed=8)
        tree = make_tree(threshold=5, binary_root=True)
        for entry in entries:
            tree.insert(entry)
        for word, rid, _ts in entries:
            leaf = tree.descend(word)
            assert any(e[1] == rid for e in leaf.entries)


class TestReporting:
    def test_depth_histogram_consistent(self):
        entries = random_entries(100, seed=9)
        tree = make_tree(threshold=4)
        for entry in entries:
            tree.insert(entry)
        histogram = tree.depth_histogram()
        assert sum(histogram.values()) == len(tree.leaves())
        assert max(histogram) == tree.height()

    def test_estimated_nbytes_counts_entries_flag(self):
        entries = random_entries(50, seed=10)
        tree = make_tree(threshold=100)
        for entry in entries:
            tree.insert(entry)
        assert tree.estimated_nbytes(True) > tree.estimated_nbytes(False)

    def test_ibt_deeper_than_sigtree_for_same_data(self):
        """The paper's compactness claim: sigTree leaves sit higher than
        iBT leaves (binary fan-out needs many more splits)."""
        from repro.core.isaxt import signature_of_series
        from repro.core.sigtree import SigTree

        rng = np.random.default_rng(11)
        values = z_normalize(
            np.cumsum(rng.standard_normal((500, LENGTH)), axis=1)
        )
        ibt = make_tree(threshold=10)
        sig_tree = SigTree(word_length=W, max_bits=BITS, split_threshold=10)
        for i in range(500):
            ibt.insert((isax_from_series(values[i], W, BITS), i, None))
            sig_tree.insert_entry(
                (signature_of_series(values[i], W, BITS), i, None)
            )
        # "Compactness means fewer internal nodes and shorter depth of
        # leaf nodes" (paper §III-B) — compare exactly those two.
        ibt_internal = ibt.n_nodes() - len(ibt.leaves())
        sig_internal = sig_tree.n_nodes() - len(sig_tree.leaves())
        assert sig_internal < ibt_internal
        assert sig_tree.height() < ibt.height()
