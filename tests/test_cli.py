"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A generated dataset and a built index, shared across CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    data = root / "rw.npz"
    index = root / "idx"
    assert main(["generate", "--dataset", "Rw", "--count", "2000",
                 "--seed", "1", "--out", str(data)]) == 0
    assert main(["build", "--data", str(data), "--out", str(index),
                 "--partition-capacity", "300", "--leaf-capacity", "30"]) == 0
    return root, data, index


class TestGenerate:
    def test_writes_loadable_npz(self, workspace):
        _root, data, _index = workspace
        payload = np.load(data, allow_pickle=False)
        assert payload["values"].shape == (2000, 256)

    def test_all_dataset_keys(self, tmp_path):
        for key in ("Rw", "Tx", "Dn", "Na"):
            out = tmp_path / f"{key}.npz"
            assert main(["generate", "--dataset", key, "--count", "50",
                         "--out", str(out)]) == 0
            assert out.exists()

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--dataset", "Zz", "--count", "10",
                  "--out", str(tmp_path / "x.npz")])


class TestInfo:
    def test_prints_summary(self, workspace, capsys):
        _root, _data, index = workspace
        assert main(["info", "--index", str(index)]) == 0
        out = capsys.readouterr().out
        assert "partitions" in out
        assert "2,000" in out


class TestExact:
    def test_present_row_found(self, workspace, capsys):
        _root, data, index = workspace
        code = main(["exact", "--index", str(index), "--data", str(data),
                     "--row", "7"])
        assert code == 0
        assert "found record ids: [7]" in capsys.readouterr().out

    def test_absent_query_exit_code(self, workspace, tmp_path, capsys):
        _root, _data, index = workspace
        rng = np.random.default_rng(0)
        q = rng.standard_normal(256)
        q = (q - q.mean()) / q.std()
        query_file = tmp_path / "q.npy"
        np.save(query_file, q)
        code = main(["exact", "--index", str(index), "--query",
                     str(query_file)])
        assert code == 1
        assert "not found" in capsys.readouterr().out

    def test_no_bloom_flag(self, workspace, capsys):
        _root, data, index = workspace
        code = main(["exact", "--index", str(index), "--data", str(data),
                     "--row", "3", "--no-bloom"])
        assert code == 0

    def test_missing_query_spec(self, workspace):
        _root, _data, index = workspace
        with pytest.raises(SystemExit):
            main(["exact", "--index", str(index)])


class TestKnn:
    @pytest.mark.parametrize(
        "strategy", ["target-node", "one-partition", "multi-partitions"]
    )
    def test_strategies_return_k(self, workspace, capsys, strategy):
        _root, data, index = workspace
        code = main(["knn", "--index", str(index), "--data", str(data),
                     "--row", "11", "--k", "5", "--strategy", strategy])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("record ") == 5
        assert "distance 0.0000" in out  # the query itself is in the data


class TestKnnExactAndRange:
    def test_exact_strategy(self, workspace, capsys):
        _root, data, index = workspace
        code = main(["knn", "--index", str(index), "--data", str(data),
                     "--row", "2", "--k", "3", "--strategy", "exact"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("record ") == 3
        assert "distance 0.0000" in out

    def test_range_command(self, workspace, capsys):
        _root, data, index = workspace
        code = main(["range", "--index", str(index), "--data", str(data),
                     "--row", "2", "--radius", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 series within radius" in out

    def test_range_limit_truncates(self, workspace, capsys):
        _root, data, index = workspace
        code = main(["range", "--index", str(index), "--data", str(data),
                     "--row", "2", "--radius", "50", "--limit", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "more" in out


class TestTelemetryFlags:
    def test_knn_writes_valid_trace_and_metrics(self, workspace, tmp_path):
        import json

        from repro.telemetry import validate_metrics_text, validate_trace

        _root, data, index = workspace
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        code = main(["knn", "--index", str(index), "--data", str(data),
                     "--row", "5", "--k", "3",
                     "--trace", str(trace), "--metrics", str(metrics)])
        assert code == 0
        doc = json.loads(trace.read_text())
        assert validate_trace(doc) >= 3
        names = {span["name"] for span in doc["spans"]}
        assert "query/knn" in names
        assert validate_metrics_text(metrics.read_text()) > 0
        assert "queries_total" in metrics.read_text()

    def test_build_trace_covers_both_phases(self, workspace, tmp_path):
        import json

        _root, data, _index = workspace
        trace = tmp_path / "build_trace.json"
        code = main(["build", "--data", str(data),
                     "--out", str(tmp_path / "idx2"),
                     "--partition-capacity", "300", "--leaf-capacity", "30",
                     "--trace", str(trace)])
        assert code == 0
        text = trace.read_text()
        assert "build/global phase" in text
        assert "build/local phase" in text
        assert "stage/" in text
        # The tracer is switched back off after the command.
        from repro.telemetry import get_tracer
        assert not get_tracer().enabled

    def test_trace_written_even_on_nonzero_exit(self, workspace, tmp_path):
        _root, _data, index = workspace
        q = np.zeros(256)
        q[0], q[1] = 1.0, -1.0
        query_file = tmp_path / "ghost.npy"
        np.save(query_file, (q - q.mean()) / q.std())
        trace = tmp_path / "miss_trace.json"
        code = main(["exact", "--index", str(index),
                     "--query", str(query_file), "--trace", str(trace)])
        assert code == 1
        assert trace.exists()

    def test_stats_command_renders_tree(self, workspace, tmp_path, capsys):
        _root, data, index = workspace
        trace = tmp_path / "t.json"
        main(["knn", "--index", str(index), "--data", str(data),
              "--row", "8", "--trace", str(trace)])
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace:")
        assert "query/knn" in out
        assert "simulated" in out

    def test_stats_depth_limits_output(self, workspace, tmp_path, capsys):
        _root, data, index = workspace
        trace = tmp_path / "t.json"
        main(["knn", "--index", str(index), "--data", str(data),
              "--row", "8", "--trace", str(trace)])
        capsys.readouterr()
        assert main(["stats", str(trace), "--depth", "0"]) == 0
        assert "query/route" not in capsys.readouterr().out

    def test_stats_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["stats", str(tmp_path / "absent.json")])
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/v9", "spans": []}')
        with pytest.raises(SystemExit, match="invalid trace"):
            main(["stats", str(bad)])

    def test_verbosity_flags_accepted_both_sides(self, workspace, capsys):
        _root, _data, index = workspace
        assert main(["-v", "info", "--index", str(index)]) == 0
        assert main(["info", "--index", str(index), "-q"]) == 0
        capsys.readouterr()

    def test_cache_flag_and_info_line(self, workspace, capsys):
        _root, data, index = workspace
        code = main(["knn", "--index", str(index), "--data", str(data),
                     "--row", "4", "--cache", "8"])
        assert code == 0
        capsys.readouterr()
        assert main(["info", "--index", str(index)]) == 0
        out = capsys.readouterr().out
        assert "partition cache: not attached" in out


class TestMultiFormatBuild:
    def test_build_from_csv(self, tmp_path, capsys):
        from repro.tsdb import random_walk
        from repro.tsdb.io import write_csv_dataset

        data = tmp_path / "d.csv"
        write_csv_dataset(
            random_walk(300, length=32, seed=7).z_normalized(),
            data, include_record_ids=False,
        )
        assert main(["build", "--data", str(data), "--out",
                     str(tmp_path / "idx"), "--partition-capacity", "100",
                     "--leaf-capacity", "10"]) == 0
        assert "300 series" in capsys.readouterr().out

    def test_build_from_ucr(self, tmp_path, capsys):
        lines = []
        rng = np.random.default_rng(1)
        for i in range(200):
            values = ",".join(f"{v:.5f}" for v in rng.standard_normal(32))
            lines.append(f"{i % 2},{values}")
        data = tmp_path / "Synth_TRAIN.txt"
        data.write_text("\n".join(lines))
        assert main(["build", "--data", str(data), "--out",
                     str(tmp_path / "idx"), "--partition-capacity", "100",
                     "--leaf-capacity", "10"]) == 0
        assert "200 series" in capsys.readouterr().out

    def test_unknown_format_rejected(self, tmp_path):
        bad = tmp_path / "d.parquet"
        bad.write_text("x")
        with pytest.raises(SystemExit, match="unsupported"):
            main(["build", "--data", str(bad), "--out", str(tmp_path / "i")])
