"""Fault-suite fixtures: a private small index (never cache-enabled).

The chaos tests must control every partition load, so they build their
own index instead of sharing the session-scoped ``tardis_small`` —
another test enabling a partition cache on the shared index would let
cached hits bypass the injector and break determinism assertions.
"""

from __future__ import annotations

import pytest

from repro.core import TardisConfig, build_tardis_index
from repro.faults import clear_injector
from repro.tsdb import random_walk

N_SERIES = 1200
LENGTH = 48


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Never let one test's fault plan bleed into the next."""
    clear_injector()
    yield
    clear_injector()


@pytest.fixture(scope="package")
def chaos_config() -> TardisConfig:
    return TardisConfig(g_max_size=150, l_max_size=25, pth=4)


@pytest.fixture(scope="package")
def chaos_dataset():
    return random_walk(N_SERIES, length=LENGTH, seed=77).z_normalized()


@pytest.fixture(scope="package")
def chaos_index(chaos_dataset, chaos_config):
    """Built fault-free; queried under fault plans by the chaos tests."""
    return build_tardis_index(chaos_dataset, chaos_config)


@pytest.fixture(scope="package")
def chaos_queries():
    return random_walk(8, length=LENGTH, seed=88).z_normalized().values
