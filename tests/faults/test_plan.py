"""Fault-plan schema: rule validation, scoping, retry math, round trips."""

import json

import pytest

from repro.faults import (
    FAULT_PLAN_SCHEMA,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    load_fault_plan,
)


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="power-outage")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(kind="task-crash", probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultRule(kind="task-crash", probability=-0.1)

    def test_task_slow_needs_delay(self):
        with pytest.raises(ValueError, match="delay_ms"):
            FaultRule(kind="task-slow")
        FaultRule(kind="task-slow", delay_ms=1.0)  # fine

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_ms"):
            FaultRule(kind="task-crash", delay_ms=-1.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-rule fields"):
            FaultRule.from_dict({"kind": "task-crash", "severity": "high"})

    def test_from_dict_requires_kind(self):
        with pytest.raises(ValueError, match="missing 'kind'"):
            FaultRule.from_dict({"probability": 0.5})

    def test_id_selectors_normalize(self):
        rule = FaultRule.from_dict(
            {"kind": "partition-load-error", "partition_id": 3}
        )
        assert rule.partition_id == frozenset((3,))
        rule = FaultRule.from_dict(
            {"kind": "partition-load-error", "partition_id": [5, 3, 5]}
        )
        assert rule.partition_id == frozenset((3, 5))

    def test_empty_id_selector_rejected(self):
        with pytest.raises(ValueError, match="cannot be empty"):
            FaultRule.from_dict(
                {"kind": "partition-load-error", "partition_id": []}
            )

    def test_bool_id_selector_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            FaultRule.from_dict(
                {"kind": "partition-load-error", "partition_id": True}
            )


class TestRuleMatching:
    def test_none_selectors_match_anything(self):
        rule = FaultRule(kind="task-crash")
        assert rule.matches(label="local/build index", attempt=3)
        assert rule.matches()

    def test_stage_is_fnmatch_over_label(self):
        rule = FaultRule(kind="task-crash", stage="local/*")
        assert rule.matches(label="local/build index")
        assert not rule.matches(label="global/sample")
        assert not rule.matches(label=None)

    def test_id_and_attempt_selectors_conjunctive(self):
        rule = FaultRule(
            kind="partition-load-error",
            partition_id=frozenset((2, 4)),
            attempt=frozenset((1,)),
        )
        assert rule.matches(partition_id=2, attempt=1)
        assert not rule.matches(partition_id=2, attempt=2)
        assert not rule.matches(partition_id=3, attempt=1)


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(backoff_ms=1.0, multiplier=2.0, jitter=0.0,
                             max_backoff_ms=4.0)
        assert policy.backoff_s(1) == pytest.approx(0.001)
        assert policy.backoff_s(2) == pytest.approx(0.002)
        assert policy.backoff_s(3) == pytest.approx(0.004)
        assert policy.backoff_s(9) == pytest.approx(0.004)  # capped

    def test_jitter_inflates_up_to_fraction(self):
        policy = RetryPolicy(backoff_ms=10.0, jitter=0.5)
        base = policy.backoff_s(1, draw=0.0)
        assert policy.backoff_s(1, draw=1.0) == pytest.approx(base * 1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_ms=-1.0)


class TestPlanRoundTrip:
    DOC = {
        "schema": FAULT_PLAN_SCHEMA,
        "seed": 42,
        "retry": {"max_attempts": 3, "backoff_ms": 0.5},
        "rules": [
            {"kind": "task-crash", "stage": "local/*", "probability": 0.05},
            {"kind": "partition-load-error", "partition_id": [3, 7],
             "attempt": [1]},
            {"kind": "socket-drop", "probability": 0.02},
        ],
    }

    def test_dict_round_trip(self):
        plan = FaultPlan.from_dict(self.DOC)
        assert plan.seed == 42
        assert plan.retry.max_attempts == 3
        assert len(plan.rules) == 3
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_schema_checked(self):
        with pytest.raises(ValueError, match="unsupported fault-plan schema"):
            FaultPlan.from_dict({"schema": "repro.faults/v9"})

    def test_unknown_plan_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            FaultPlan.from_dict({"chaos": True})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(self.DOC))
        plan = load_fault_plan(path)
        assert plan == FaultPlan.from_dict(self.DOC)

    def test_load_invalid_json_raises_value_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="cannot read fault plan"):
            load_fault_plan(path)

    def test_load_missing_file_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read fault plan"):
            load_fault_plan(tmp_path / "absent.json")
