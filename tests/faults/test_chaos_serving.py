"""Chaos through the serving stack: group retries, typed wire errors,
socket drops, and degraded-result accounting."""

import pytest

from repro.core import knn_target_node_access
from repro.core.queries import exact_match
from repro.faults import InjectedTaskCrash, PartialResultError, active_plan
from repro.serving import QueryRequest, QueryService, ServingClient, TardisServer


def service(index, **kwargs):
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_delay_ms", 1.0)
    return QueryService(index, **kwargs)


class TestServeGroupFaults:
    def test_transient_crash_retries_to_baseline(self, chaos_index,
                                                 chaos_queries):
        ref = knn_target_node_access(chaos_index, chaos_queries[0], 5)
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "task-crash", "stage": "serve/*", "attempt": [1]},
        ]}
        with active_plan(plan) as injector:
            with service(chaos_index, result_cache_size=0) as svc:
                got = svc.query(QueryRequest(
                    chaos_queries[0], op="knn", strategy="target-node", k=5
                ))
            assert injector.stats()["by_kind"]["task-crash"] >= 1
        assert got.record_ids == ref.record_ids
        assert got.distances == pytest.approx(ref.distances)
        report = svc.stats()
        assert report["requests_completed"] == 1
        assert report["requests_failed"] == 0

    def test_exhausted_crash_fails_request_typed(self, chaos_index,
                                                 chaos_queries):
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "task-crash", "stage": "serve/*"},
        ]}
        with active_plan(plan):
            with service(chaos_index, result_cache_size=0) as svc:
                future = svc.submit(QueryRequest(
                    chaos_queries[0], op="knn", strategy="target-node", k=5
                ))
                with pytest.raises(InjectedTaskCrash):
                    future.result(timeout=30.0)
        assert svc.stats()["requests_failed"] == 1

    def test_straggler_group_still_answers(self, chaos_index, chaos_queries):
        ref = knn_target_node_access(chaos_index, chaos_queries[1], 5)
        plan = {"schema": "repro.faults/v1", "seed": 2, "rules": [
            {"kind": "task-slow", "stage": "serve/*", "delay_ms": 5.0},
        ]}
        with active_plan(plan):
            with service(chaos_index, result_cache_size=0) as svc:
                got = svc.query(QueryRequest(
                    chaos_queries[1], op="knn", strategy="target-node", k=5
                ))
        assert got.record_ids == ref.record_ids


class TestDegradedServing:
    def _home_of(self, index, query):
        return knn_target_node_access(index, query, 5).partition_ids_loaded[0]

    def test_degraded_result_tagged_and_counted(self, chaos_index,
                                                chaos_queries):
        home = self._home_of(chaos_index, chaos_queries[2])
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "partition-load-error", "partition_id": home},
        ]}
        request = QueryRequest(
            chaos_queries[2], op="knn", strategy="one-partition", k=5
        )
        with active_plan(plan):
            with service(chaos_index) as svc:
                got = svc.query(request)
                again = svc.query(request)
        assert got.degraded and got.missing_partitions == [home]
        report = svc.stats()
        assert report["requests_degraded"] == 2
        assert report["requests_failed"] == 0
        # Degraded answers must never enter the result cache: the second
        # identical request recomputed instead of hitting.
        assert report["result_cache_hits"] == 0
        assert again.degraded

    def test_exact_match_partial_result_fails_only_its_ticket(
        self, chaos_index, chaos_dataset
    ):
        rows = [chaos_dataset.values[3], chaos_dataset.values[9]]
        homes = [
            exact_match(chaos_index, row).partition_ids_loaded[0]
            for row in rows
        ]
        if homes[0] == homes[1]:
            pytest.skip("rows landed in one partition; need two homes")
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "partition-load-error", "partition_id": homes[0]},
        ]}
        with active_plan(plan):
            with service(chaos_index, result_cache_size=0) as svc:
                doomed = svc.submit(QueryRequest(rows[0], op="exact-match"))
                healthy = svc.submit(QueryRequest(rows[1], op="exact-match"))
                assert healthy.result(timeout=30.0).found
                with pytest.raises(PartialResultError) as excinfo:
                    doomed.result(timeout=30.0)
        assert excinfo.value.missing_partitions == [homes[0]]


class TestWireFaults:
    def test_socket_drop_cuts_connection_after_work(self, chaos_index,
                                                    chaos_queries):
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "socket-drop"},
        ]}
        with active_plan(plan):
            with TardisServer(service(chaos_index)) as server:
                host, port = server.address
                with ServingClient(host, port, timeout=10.0) as client:
                    with pytest.raises(ConnectionError):
                        client.knn(chaos_queries[0], k=3)
                # The query itself completed server-side before the drop.
                assert server.service.stats()["requests_completed"] == 1

    def test_partial_result_crosses_the_wire_typed(self, chaos_index,
                                                   chaos_dataset):
        row = chaos_dataset.values[7]
        home = exact_match(chaos_index, row).partition_ids_loaded[0]
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "partition-load-error", "partition_id": home},
        ]}
        with active_plan(plan):
            with TardisServer(service(chaos_index)) as server:
                host, port = server.address
                with ServingClient(host, port, timeout=10.0) as client:
                    with pytest.raises(PartialResultError) as excinfo:
                        client.exact_match(row)
        assert excinfo.value.missing_partitions == [home]

    def test_degraded_knn_crosses_the_wire_tagged(self, chaos_index,
                                                  chaos_queries):
        home = knn_target_node_access(
            chaos_index, chaos_queries[4], 5
        ).partition_ids_loaded[0]
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "partition-load-error", "partition_id": home},
        ]}
        with active_plan(plan):
            with TardisServer(service(chaos_index)) as server:
                host, port = server.address
                with ServingClient(host, port, timeout=10.0) as client:
                    result = client.knn(
                        chaos_queries[4], k=5, strategy="target-node"
                    )
        assert result["degraded"] is True
        assert result["missing_partitions"] == [home]
        assert result["record_ids"] == []
