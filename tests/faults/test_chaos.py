"""Seeded chaos suite: retries recover exactly, losses degrade soundly.

Two invariants, each asserted across dozens of plan seeds:

* **Retry-equals-baseline** — under transient faults (scoped to early
  attempts, or sub-1.0 probability with attempts to spare) every query
  answer is byte-equal to the fault-free baseline.  Retries may cost
  time; they may never change results.
* **Degraded-subset** — under permanent partition loss, approximate kNN
  returns ``degraded=True`` with exactly the lost-and-needed partitions
  in ``missing_partitions``, and its neighbor list is a *prefix* of the
  baseline answer (the MINDIST truncation guarantee); exact-match
  raises a typed :class:`PartialResultError` naming the home partition.
"""

import pytest

from repro.core import (
    build_tardis_index,
    exact_match,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.faults import (
    PartialResultError,
    PartitionUnavailableError,
    StorageReadError,
    active_plan,
    get_injector,
)
from repro.cluster import BlockStorage, SimCluster, TaskFailedError

TRANSIENT_SEEDS = range(30)
LOSS_SEEDS = range(25)


def transient_plan(seed: int) -> dict:
    """Faults that always burn retries, never the retry budget: load
    errors are confined to attempts 1-2 of a 4-attempt budget."""
    return {
        "schema": "repro.faults/v1",
        "seed": seed,
        "rules": [
            {"kind": "partition-load-error", "stage": "query/load",
             "attempt": [1, 2], "probability": 0.6},
            {"kind": "task-slow", "stage": "query/load",
             "delay_ms": 0.05, "probability": 0.3},
        ],
    }


def loss_plan(seed: int, lost: list[int]) -> dict:
    """Permanent loss: every load attempt against ``lost`` fails."""
    return {
        "schema": "repro.faults/v1",
        "seed": seed,
        "rules": [
            {"kind": "partition-load-error", "partition_id": sorted(lost)},
        ],
    }


def lost_partitions(index, seed: int) -> list[int]:
    pids = sorted(index.partitions)
    return sorted({pids[seed % len(pids)], pids[(7 * seed + 3) % len(pids)]})


def assert_same_knn(got, ref):
    assert got.record_ids == ref.record_ids
    assert got.distances == pytest.approx(ref.distances)
    assert got.partition_ids_loaded == ref.partition_ids_loaded
    assert not got.degraded
    assert got.missing_partitions == []


class TestRetryEqualsBaseline:
    @pytest.fixture(scope="class")
    def baselines(self, chaos_index, chaos_queries):
        return [
            knn_multi_partitions_access(chaos_index, q, 10)
            for q in chaos_queries
        ]

    @pytest.mark.parametrize("seed", TRANSIENT_SEEDS)
    def test_knn_answers_unchanged(self, chaos_index, chaos_queries,
                                   baselines, seed):
        with active_plan(transient_plan(seed)) as injector:
            for q, ref in zip(chaos_queries[:3], baselines[:3]):
                assert_same_knn(
                    knn_multi_partitions_access(chaos_index, q, 10), ref
                )
            # The plan is dense enough that silence means a wiring bug.
            assert injector.stats()["injected"] > 0

    @pytest.mark.parametrize("seed", (0, 1, 2, 3))
    def test_exact_match_unchanged(self, chaos_index, chaos_dataset, seed):
        rows = chaos_dataset.values[:4]
        refs = [exact_match(chaos_index, row) for row in rows]
        with active_plan(transient_plan(seed)):
            for row, ref in zip(rows, refs):
                got = exact_match(chaos_index, row)
                assert got.record_ids == ref.record_ids
                assert got.partition_ids_loaded == ref.partition_ids_loaded

    def test_retries_are_journaled(self, chaos_index, chaos_queries):
        with active_plan(transient_plan(0)) as injector:
            knn_multi_partitions_access(chaos_index, chaos_queries[0], 10)
            journal = injector.journal()
        assert journal
        assert all(
            entry["kind"] in ("partition-load-error", "task-slow")
            for entry in journal
        )
        assert all("ts" not in entry for entry in journal)


class TestDegradedSubset:
    @pytest.fixture(scope="class")
    def baselines(self, chaos_index, chaos_queries):
        return [
            knn_multi_partitions_access(chaos_index, q, 10)
            for q in chaos_queries
        ]

    @pytest.mark.parametrize("seed", LOSS_SEEDS)
    def test_multi_partitions_degrades_to_prefix(
        self, chaos_index, chaos_queries, baselines, seed
    ):
        lost = lost_partitions(chaos_index, seed)
        with active_plan(loss_plan(seed, lost)):
            for q, ref in zip(chaos_queries[:3], baselines[:3]):
                got = knn_multi_partitions_access(chaos_index, q, 10)
                needed = sorted(
                    set(lost) & set(ref.partition_ids_loaded)
                )
                if not needed:
                    assert_same_knn(got, ref)
                    continue
                assert got.degraded
                assert got.missing_partitions == needed
                # MINDIST truncation: every surviving neighbor is the
                # baseline answer's prefix, bit-for-bit.
                n = len(got.record_ids)
                assert n <= len(ref.record_ids)
                assert got.record_ids == ref.record_ids[:n]
                assert got.distances == pytest.approx(ref.distances[:n])

    @pytest.mark.parametrize("row", (0, 11, 222))
    def test_single_partition_strategies_degrade_empty(
        self, chaos_index, chaos_queries, row
    ):
        query = chaos_queries[row % len(chaos_queries)]
        for strategy in (knn_target_node_access, knn_one_partition_access):
            ref = strategy(chaos_index, query, 5)
            [home] = ref.partition_ids_loaded
            with active_plan(loss_plan(1, [home])):
                got = strategy(chaos_index, query, 5)
            assert got.degraded
            assert got.missing_partitions == [home]
            assert got.record_ids == []
            assert got.partitions_loaded == 0

    def test_exact_match_raises_typed_partial_result(
        self, chaos_index, chaos_dataset
    ):
        row = chaos_dataset.values[5]
        ref = exact_match(chaos_index, row)
        [home] = ref.partition_ids_loaded
        with active_plan(loss_plan(2, [home])):
            with pytest.raises(PartialResultError) as excinfo:
                exact_match(chaos_index, row)
        assert excinfo.value.missing_partitions == [home]

    def test_load_partition_exhaustion_is_typed(self, chaos_index):
        pid = sorted(chaos_index.partitions)[0]
        with active_plan(loss_plan(3, [pid])):
            with pytest.raises(PartitionUnavailableError) as excinfo:
                chaos_index.load_partition(pid)
        assert excinfo.value.partition_id == pid
        assert "4 load attempts" in str(excinfo.value)


class TestBuildUnderFaults:
    BUILD_PLAN_RULES = [
        {"kind": "task-crash", "stage": "*", "attempt": [1, 2],
         "probability": 0.5},
        {"kind": "task-slow", "stage": "*", "delay_ms": 0.1,
         "probability": 0.2},
        {"kind": "storage-read-error", "attempt": [1],
         "probability": 0.4},
    ]

    @pytest.mark.parametrize("seed", range(6))
    def test_build_identical_despite_crashes(
        self, chaos_dataset, chaos_config, chaos_index, seed
    ):
        plan = {"schema": "repro.faults/v1", "seed": seed,
                "rules": self.BUILD_PLAN_RULES}
        with active_plan(plan) as injector:
            rebuilt = build_tardis_index(chaos_dataset, chaos_config)
            assert injector.stats()["injected"] > 0
        layout = {
            pid: sorted(e[1] for e in part.all_entries())
            for pid, part in rebuilt.partitions.items()
        }
        reference = {
            pid: sorted(e[1] for e in part.all_entries())
            for pid, part in chaos_index.partitions.items()
        }
        assert layout == reference
        got = exact_match(rebuilt, chaos_dataset.values[17])
        assert 17 in got.record_ids

    def test_faulted_build_costs_more(self, chaos_dataset, chaos_config):
        baseline = SimCluster(n_workers=chaos_config.n_workers)
        build_tardis_index(chaos_dataset, chaos_config, cluster=baseline)
        flaky = SimCluster(n_workers=chaos_config.n_workers)
        plan = {"schema": "repro.faults/v1", "seed": 0,
                "rules": self.BUILD_PLAN_RULES}
        with active_plan(plan):
            build_tardis_index(chaos_dataset, chaos_config, cluster=flaky)
        assert flaky.ledger.clock_s > baseline.ledger.clock_s


class TestStorageFaults:
    def _storage(self):
        return BlockStorage.from_records(list(range(200)), block_capacity=25)

    def test_transient_reads_recover(self):
        storage = self._storage()
        baseline = SimCluster(n_workers=4)
        expected = baseline.read_storage(storage, label="read").map(
            lambda x: x * 3, label="x3"
        ).collect()
        plan = {"schema": "repro.faults/v1", "seed": 5, "rules": [
            {"kind": "storage-read-error", "attempt": [1, 2],
             "probability": 0.7},
        ]}
        flaky = SimCluster(n_workers=4)
        with active_plan(plan) as injector:
            got = flaky.read_storage(storage, label="read").map(
                lambda x: x * 3, label="x3"
            ).collect()
            assert injector.stats()["injected"] > 0
        assert got == expected
        # Failed reads are re-charged: the flaky run's io bill is larger.
        assert flaky.ledger.stage("read").wall_s > \
            baseline.ledger.stage("read").wall_s

    def test_exhausted_reads_raise_typed_error(self):
        plan = {"schema": "repro.faults/v1", "seed": 1, "rules": [
            {"kind": "storage-read-error", "block_id": 0},
        ]}
        cluster = SimCluster(n_workers=2)
        with active_plan(plan):
            with pytest.raises(StorageReadError, match="block 0"):
                cluster.read_storage(self._storage(), label="read")


class TestInjectedTaskFaults:
    def test_exhausted_task_crash_raises(self):
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "task-crash", "stage": "doomed"},
        ]}
        cluster = SimCluster(n_workers=2)
        data = cluster.parallelize([1, 2], 2)
        with active_plan(plan):
            with pytest.raises(TaskFailedError, match="injected"):
                data.map(lambda x: x, label="doomed")

    def test_disabled_injection_leaves_no_trace(self, chaos_index,
                                                chaos_queries):
        assert get_injector() is None
        result = knn_multi_partitions_access(chaos_index, chaos_queries[0], 5)
        assert not result.degraded
        assert result.missing_partitions == []
