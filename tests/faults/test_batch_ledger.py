"""Batch-pass accounting under partition loss.

Regression suite for the ledger undercount: a batch group whose
partition load exhausts its retries still *spent* the retry/backoff wall
time, so that time must appear in the ``batch/partition pass`` stage —
previously failed groups vanished from the accounting entirely and a
lossy run looked cheaper than a healthy one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import batch_exact_match, batch_knn_target_node
from repro.core.batch import group_queries_by_partition
from repro.faults import PartialResultError, active_plan


def loss_plan(lost: list[int]) -> dict:
    return {
        "schema": "repro.faults/v1",
        "seed": 5,
        "rules": [
            {"kind": "partition-load-error", "partition_id": sorted(lost)},
        ],
    }


@pytest.fixture(scope="module")
def routed(chaos_index, chaos_queries):
    """Queries spread over several partitions, with the group map."""
    queries = np.asarray(chaos_queries)
    groups, _converted = group_queries_by_partition(chaos_index, queries)
    assert len(groups) >= 2, "need multiple groups to lose one of them"
    return queries, groups


class TestFailedGroupCharged:
    def test_knn_failed_load_time_in_partition_pass(
        self, chaos_index, routed
    ):
        queries, groups = routed
        lost = [sorted(groups)[0]]
        with active_plan(loss_plan(lost)):
            report = batch_knn_target_node(chaos_index, queries, k=5)
        stage = report.ledger.stages["batch/partition pass"]
        # The failed group is a task of the pass, like the loaded ones.
        assert stage.tasks == len(groups)
        assert report.partitions_loaded == len(groups) - 1
        # Its queries degraded but its retry/backoff time was spent.
        degraded = [r for r in report.results if r.degraded]
        assert {pid for r in degraded for pid in r.missing_partitions} == set(
            lost
        )
        assert stage.io_s > 0.0

    def test_all_partitions_lost_still_costs_time(self, chaos_index, routed):
        """The pure undercount case: nothing loads, so before the fix the
        partition pass reported zero tasks and zero seconds."""
        queries, groups = routed
        with active_plan(loss_plan(sorted(groups))):
            report = batch_knn_target_node(chaos_index, queries, k=5)
        assert report.partitions_loaded == 0
        stage = report.ledger.stages["batch/partition pass"]
        assert stage.tasks == len(groups)
        assert stage.io_s > 0.0
        assert report.simulated_seconds > 0.0
        assert all(r.degraded for r in report.results)

    def test_exact_match_failed_group_charged(self, chaos_index, routed):
        queries, groups = routed
        lost = [sorted(groups)[-1]]
        with active_plan(loss_plan(lost)):
            report = batch_exact_match(chaos_index, queries, use_bloom=False)
        stage = report.ledger.stages["batch/partition pass"]
        assert stage.tasks == len(groups)
        assert report.partitions_loaded == len(groups) - 1
        # Queries of the lost group hold the typed partial-result error.
        failed_idx = groups[lost[0]]
        for i in failed_idx:
            assert isinstance(report.results[i], PartialResultError)
            assert report.results[i].missing_partitions == lost

    def test_lossy_run_never_cheaper_than_healthy(self, chaos_index, routed):
        """Monotonicity the undercount violated: losing a partition adds
        retry/backoff time, so the batch clock must not shrink."""
        queries, groups = routed
        healthy = batch_knn_target_node(chaos_index, queries, k=5)
        with active_plan(loss_plan([sorted(groups)[0]])):
            lossy = batch_knn_target_node(chaos_index, queries, k=5)
        healthy_stage = healthy.ledger.stages["batch/partition pass"]
        lossy_stage = lossy.ledger.stages["batch/partition pass"]
        assert lossy_stage.tasks == healthy_stage.tasks


class TestSkippedGroupsStayFree:
    def test_bloom_skipped_groups_not_counted(self, chaos_index):
        """All-rejected groups never load, so they are *not* partition
        pass tasks — only genuinely attempted loads are."""
        rng = np.random.default_rng(123)
        # Foreign queries: almost surely absent from every partition.
        from repro.tsdb.series import z_normalize

        ghosts = z_normalize(
            np.cumsum(rng.standard_normal((6, chaos_index.series_length)),
                      axis=1)
        )
        report = batch_exact_match(chaos_index, ghosts, use_bloom=True)
        stage = report.ledger.stages["batch/partition pass"]
        assert stage.tasks == report.partitions_loaded
