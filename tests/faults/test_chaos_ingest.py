"""Chaos for the streaming-ingest path: seeded crashes mid-split and
mid-swap, WAL replay determinism, and degraded reads mid-migration.

The core durability claim under test: after any injected crash, replay
of the WAL onto the base snapshot lands on a state bit-identical to
either the pre-split layout (cycle never committed) or the post-split
layout (cycle committed) — never anything in between.
"""

import numpy as np
import pytest

from repro.core import (
    TardisConfig,
    OnlineRebalancer,
    WriteAheadLog,
    build_tardis_index,
    exact_match,
    knn_exact,
    read_wal,
    replay_wal,
)
from repro.faults import InjectedTaskCrash, active_plan
from repro.serving import QueryRequest, QueryService
from repro.serving.requests import WriteRequest
from repro.tsdb import random_walk

LENGTH = 48
BASE_N = 360


def fresh_config() -> TardisConfig:
    return TardisConfig(g_max_size=60, l_max_size=12, seed=13)


@pytest.fixture()
def base_dataset():
    return random_walk(BASE_N, length=LENGTH, seed=31).z_normalized()


@pytest.fixture()
def stream():
    return random_walk(150, length=LENGTH, seed=32).z_normalized().values


@pytest.fixture()
def probes():
    return random_walk(5, length=LENGTH, seed=33).z_normalized().values


def build_base(dataset):
    return build_tardis_index(dataset, fresh_config())


def layout(index) -> dict:
    """Canonical partition layout: the bit-identity comparator."""
    return {
        pid: tuple(sorted(int(r) for r in p.block.record_ids))
        for pid, p in index.partitions.items()
    }


def answers(index, queries, k=5):
    out = []
    for q in queries:
        out.append((
            sorted(exact_match(index, q).record_ids),
            [(n.distance, n.record_id)
             for n in knn_exact(index, q, k).neighbors],
        ))
    return out


def append(index, wal, rows):
    rows = np.asarray(rows, dtype=np.float64)
    rids = [index._next_record_id() for _ in rows]
    wal.log_appends(list(zip(rids, rows)))
    index.ingest(rows, record_ids=rids)
    return rids


def overflow(index, wal, stream):
    """Stream until at least one partition is over the 1.2x watermark."""
    threshold = int(index.config.partition_capacity * 1.2)
    cursor = 0
    while cursor < len(stream):
        append(index, wal, stream[cursor:cursor + 20])
        cursor += 20
        if any(p.n_records > threshold for p in index.partitions.values()):
            return cursor
    raise AssertionError("stream never overflowed a partition")


class TestCrashMidCycle:
    @pytest.mark.parametrize("stage", ["ingest/split", "ingest/swap"])
    def test_crash_leaves_presplit_state(self, base_dataset, stream,
                                         probes, tmp_path, stage):
        live = build_base(base_dataset)
        wal = WriteAheadLog(tmp_path / "crash.wal")
        cursor = overflow(live, wal, stream)
        pre_layout = layout(live)
        pre_answers = answers(live, probes)
        rebalancer = OnlineRebalancer(
            live, overflow_factor=1.2, wal=wal
        )
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "task-crash", "stage": stage},
        ]}
        with active_plan(plan) as injector:
            cycle = rebalancer.run_cycle()
            assert injector.stats()["by_kind"]["task-crash"] >= 1
        assert cycle.aborted is not None
        assert cycle.report is None
        # The live index never mutated: pre-split state, exactly.
        assert layout(live) == pre_layout
        assert answers(live, probes) == pre_answers
        live.validate()
        # The WAL carries the dangling begin (split crashes before the
        # snapshot marker only for the swap stage; both must replay to
        # the same pre-split state either way).
        wal.close()
        records, _ = read_wal(tmp_path / "crash.wal")
        kinds = [r["kind"] for r in records]
        assert "rebalance-commit" not in kinds
        fresh = build_base(base_dataset)
        report = replay_wal(fresh, tmp_path / "crash.wal")
        assert report.appends_applied == cursor
        assert report.rebalances_replayed == 0
        assert layout(fresh) == pre_layout
        assert answers(fresh, probes) == pre_answers
        fresh.validate()

    def test_committed_cycle_replays_postsplit(self, base_dataset, stream,
                                               probes, tmp_path):
        live = build_base(base_dataset)
        wal = WriteAheadLog(tmp_path / "commit.wal")
        overflow(live, wal, stream)
        rebalancer = OnlineRebalancer(live, overflow_factor=1.2, wal=wal)
        cycle = rebalancer.run_cycle()
        assert cycle.aborted is None
        assert cycle.report.partitions_split >= 1
        post_layout = layout(live)
        live.validate()
        wal.close()
        fresh = build_base(base_dataset)
        report = replay_wal(fresh, tmp_path / "commit.wal")
        assert report.rebalances_replayed == 1
        # Bit-identical post-split state — replay re-runs the same
        # deterministic split at the commit point.
        assert layout(fresh) == post_layout
        assert answers(fresh, probes) == answers(live, probes)
        fresh.validate()

    def test_torn_tail_after_crash_still_replays(self, base_dataset,
                                                 stream, tmp_path):
        live = build_base(base_dataset)
        path = tmp_path / "torn.wal"
        wal = WriteAheadLog(path)
        rids = append(live, wal, stream[:10])
        wal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "append", "record_id":')
        fresh = build_base(base_dataset)
        report = replay_wal(fresh, path)
        assert report.torn_tail
        assert report.record_ids == rids
        fresh.validate()


class TestFaultyAppends:
    def test_transient_append_crash_retries_to_ack(self, base_dataset,
                                                   stream):
        index = build_base(base_dataset)
        plan = {"schema": "repro.faults/v1", "seed": 4, "rules": [
            {"kind": "task-crash", "stage": "ingest/append",
             "attempt": [1]},
        ]}
        with active_plan(plan) as injector:
            with QueryService(index, max_delay_ms=1.0) as svc:
                ack = svc.write(stream[:3])
            assert injector.stats()["by_kind"]["task-crash"] >= 1
        assert ack.acknowledged == 3

    def test_exhausted_append_crash_never_acked_never_logged(
        self, base_dataset, stream, tmp_path
    ):
        index = build_base(base_dataset)
        wal_path = tmp_path / "failed.wal"
        plan = {"schema": "repro.faults/v1", "seed": 4, "rules": [
            {"kind": "task-crash", "stage": "ingest/append"},
        ]}
        with active_plan(plan):
            with QueryService(index, wal=wal_path, max_delay_ms=1.0) as svc:
                future = svc.submit_write(WriteRequest(batch=stream[:2]))
                with pytest.raises(InjectedTaskCrash):
                    future.result(timeout=60.0)
                assert svc.stats()["ingest"]["writes_failed"] == 1
        # Crash-before-log: the failed batch left no WAL records, so
        # replay cannot resurrect an unacknowledged write.
        records, _ = read_wal(wal_path)
        assert [r for r in records if r["kind"] == "append"] == []
        assert index.n_records == BASE_N

    def test_five_pct_plan_replay_equals_acked(self, base_dataset,
                                               stream, probes, tmp_path):
        """Acceptance drill: a 5% crash plan over every ingest site;
        whatever was acknowledged must replay bit-identically."""
        wal_path = tmp_path / "five.wal"
        index = build_base(base_dataset)
        plan = {"schema": "repro.faults/v1", "seed": 93, "rules": [
            {"kind": "task-crash", "stage": "ingest/*",
             "attempt": [1, 2], "probability": 0.05},
        ]}
        acked: list[int] = []
        with active_plan(plan):
            with QueryService(
                index, wal=wal_path, rebalance=True,
                rebalance_overflow=1.2, rebalance_interval_s=0.02,
                max_delay_ms=1.0,
            ) as svc:
                for i in range(0, len(stream), 5):
                    acked.extend(svc.write(stream[i:i + 5]).record_ids)
        assert len(acked) == len(stream)
        live_answers = answers(index, probes)
        fresh = build_base(base_dataset)
        report = replay_wal(fresh, wal_path)
        assert report.record_ids == acked
        assert layout(fresh) == layout(index)
        assert answers(fresh, probes) == live_answers
        fresh.validate()


class TestReadsDuringMigration:
    def test_reads_answer_while_cycle_runs(self, base_dataset, stream,
                                           probes, tmp_path):
        """A slow mid-cycle repack must not block reads: the plan/build
        phases run off the gate, so queries proceed concurrently."""
        index = build_base(base_dataset)
        wal = WriteAheadLog(tmp_path / "slow.wal")
        overflow(index, wal, stream)
        ref = answers(index, probes)
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "task-slow", "stage": "ingest/split",
             "delay_ms": 300.0},
        ]}
        with active_plan(plan):
            with QueryService(index, max_delay_ms=1.0,
                              result_cache_size=0) as svc:
                rebalancer = OnlineRebalancer(
                    index, overflow_factor=1.2, wal=wal,
                    gate=svc._maintenance_gate,
                )
                import threading
                import time

                cycle_thread = threading.Thread(
                    target=rebalancer.run_cycle, daemon=True
                )
                cycle_thread.start()
                time.sleep(0.05)  # inside the slow split phase
                started = time.monotonic()
                got = svc.query(QueryRequest(probes[0], op="exact-match"))
                elapsed = time.monotonic() - started
                cycle_thread.join(timeout=60.0)
        assert sorted(got.record_ids) == ref[0][0]
        # The read completed well inside the 300ms injected stall.
        assert elapsed < 0.25
        index.validate()

    def test_degraded_read_mid_migration(self, base_dataset, stream,
                                         probes, tmp_path):
        """Partition loss during a migration degrades — not fails — a
        kNN read, exactly as in steady state."""
        from repro.core.queries import query_signature

        index = build_base(base_dataset)
        wal = WriteAheadLog(tmp_path / "deg.wal")
        overflow(index, wal, stream)
        signature, _ = query_signature(index, probes[1])
        home = index.global_index.route(signature)
        victim = next(p for p in sorted(index.partitions) if p != home)
        plan = {"schema": "repro.faults/v1", "seed": 0, "rules": [
            {"kind": "task-slow", "stage": "ingest/split",
             "delay_ms": 200.0},
            {"kind": "partition-load-error", "partition_id": victim},
        ]}
        with active_plan(plan):
            with QueryService(index, max_delay_ms=1.0,
                              result_cache_size=0) as svc:
                rebalancer = OnlineRebalancer(
                    index, overflow_factor=1.2, wal=wal,
                    gate=svc._maintenance_gate,
                )
                import threading
                import time

                cycle_thread = threading.Thread(
                    target=rebalancer.run_cycle, daemon=True
                )
                cycle_thread.start()
                time.sleep(0.02)
                got = svc.query(QueryRequest(
                    probes[1], op="knn", strategy="multi-partitions", k=3
                ))
                cycle_thread.join(timeout=60.0)
        # Degraded, not failed: the query completed mid-migration and
        # reports which partition it could not certify against.
        assert got.degraded
        assert victim in got.missing_partitions
        assert len(got.record_ids) <= 3
