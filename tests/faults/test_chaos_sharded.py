"""Seeded chaos at the shard layer: the router's two invariants.

Extends the chaos suite (`test_chaos.py`) to the sharded serving tier
with fault rules scoped to router→shard calls (``stage: "shard/*"``)
and to whole shards (``shard_id``):

* **Retry-equals-baseline** — under transient shard-call faults
  (attempt-scoped crashes, slow calls) with replicas available, every
  routed answer is byte-equal to the fault-free single-process
  baseline.  Failover may cost retries; it may never change results.
* **Degraded-subset** — under permanent whole-shard loss with no
  replicas, MPA kNN returns ``degraded=True`` with exactly the
  lost-and-needed partitions in ``missing_partitions`` and a neighbor
  list that is a *prefix* of the baseline (region-synopsis bound) —
  while the same dead shard with R=1 changes nothing at all.
"""

import json
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core.queries import knn_multi_partitions_access
from repro.faults import active_plan
from repro.serving import QueryRequest
from repro.sharding import RouterIndex, RouterService, ShardCluster

SHARD_TRANSIENT_SEEDS = range(18)
SHARD_LOSS_SEEDS = range(12)
N_SHARDS = 3


@contextmanager
def sharded(index, replication, **router_kwargs):
    router_kwargs.setdefault("result_cache_size", None)
    router_kwargs.setdefault("health_interval_s", 0.0)
    router_kwargs.setdefault("call_timeout_s", 5.0)
    with ShardCluster.for_index(
        index, N_SHARDS, replication, mode="threads",
        service_kwargs={"result_cache_size": None, "max_delay_ms": 1.0},
    ) as cluster:
        with RouterService(
            RouterIndex.from_index(index), cluster.plan,
            cluster.addresses, **router_kwargs,
        ) as router:
            yield router, cluster


def shard_transient_plan(seed: int) -> dict:
    """Shard calls that fail or stall on their first attempt only —
    dense enough that a silent run means the hook is unwired."""
    return {
        "schema": "repro.faults/v1",
        "seed": seed,
        "rules": [
            {"kind": "task-crash", "stage": "shard/*",
             "attempt": [1], "probability": 0.6},
            {"kind": "task-slow", "stage": "shard/*",
             "delay_ms": 0.05, "probability": 0.5},
        ],
    }


def shard_loss_plan(seed: int, shard_id: int) -> dict:
    """One whole shard permanently unreachable at the call layer."""
    return {
        "schema": "repro.faults/v1",
        "seed": seed,
        "rules": [
            {"kind": "task-crash", "stage": "shard/*",
             "shard_id": shard_id},
        ],
    }


def _mpa(router, query, k=10):
    return router.query(
        QueryRequest(query, op="knn", strategy="multi-partitions", k=k),
        timeout=60,
    )


@pytest.fixture(scope="module")
def baselines(chaos_index, chaos_queries):
    return [
        knn_multi_partitions_access(chaos_index, q, 10)
        for q in chaos_queries
    ]


class TestShardRetryEqualsBaseline:
    @pytest.mark.parametrize("seed", SHARD_TRANSIENT_SEEDS)
    def test_routed_answers_unchanged(self, chaos_index, chaos_queries,
                                      baselines, seed):
        with active_plan(shard_transient_plan(seed)) as injector:
            with sharded(chaos_index, replication=1) as (router, _cluster):
                for q, want in zip(chaos_queries[:3], baselines[:3]):
                    got = _mpa(router, q)
                    assert got.record_ids == want.record_ids
                    assert got.distances == want.distances
                    assert not got.degraded
                    assert got.missing_partitions == []
                report = router.stats()
            assert injector.stats()["injected"] > 0
        assert report["requests_failed"] == 0
        assert report["requests_degraded"] == 0

    def test_retries_journaled_with_shard_ids(self, chaos_index,
                                              chaos_queries):
        with active_plan(shard_transient_plan(0)) as injector:
            with sharded(chaos_index, replication=1) as (router, _cluster):
                _mpa(router, chaos_queries[0])
            journal = injector.journal()
        shard_entries = [
            e for e in journal if e["site"].startswith("shard/")
        ]
        assert shard_entries
        assert all("shard_id" in e for e in shard_entries)
        assert all(
            e["kind"] in ("task-crash", "task-slow") for e in shard_entries
        )


class TestShardLossDegradesSoundly:
    @pytest.mark.parametrize("seed", SHARD_LOSS_SEEDS)
    def test_unreplicated_loss_is_a_prefix(self, chaos_index, chaos_queries,
                                           baselines, seed):
        dead = seed % N_SHARDS
        with active_plan(shard_loss_plan(seed, dead)):
            with sharded(chaos_index, replication=0) as (router, cluster):
                lost = set(cluster.plan.shards[dead])
                for q, want in zip(chaos_queries[:3], baselines[:3]):
                    got = _mpa(router, q)
                    needed = sorted(
                        lost & set(want.partition_ids_loaded)
                    )
                    if not needed:
                        assert not got.degraded
                        assert got.record_ids == want.record_ids
                        assert got.distances == want.distances
                        continue
                    assert got.degraded
                    assert got.missing_partitions == needed
                    n = len(got.record_ids)
                    assert got.record_ids == want.record_ids[:n]
                    assert got.distances == want.distances[:n]

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_replicated_loss_changes_nothing(self, chaos_index,
                                             chaos_queries, baselines,
                                             seed):
        dead = seed % N_SHARDS
        with active_plan(shard_loss_plan(seed, dead)):
            with sharded(chaos_index, replication=1) as (router, _cluster):
                for q, want in zip(chaos_queries[:3], baselines[:3]):
                    got = _mpa(router, q)
                    assert got.record_ids == want.record_ids
                    assert got.distances == want.distances
                    assert not got.degraded

    def test_killed_shard_chaos_journals_failovers_without_orphans(
        self, chaos_index, chaos_queries, baselines, tmp_path
    ):
        """The CI chaos plan plus a hard-killed shard: the *merged*
        cluster journal must carry the failover re-route events with
        the dead shard's id as provenance, and the stitched cluster
        trace must stay orphan-free — failover legs are tagged child
        spans of the one request trace, never roots of their own."""
        from repro.telemetry import write_trace
        from repro.telemetry.journal import validate_journal_lines
        from repro.telemetry.spans import disable_tracing, enable_tracing
        from repro.telemetry.validate import main as validate_main

        plan_doc = json.loads(
            (Path(__file__).parents[2] / "examples" / "faults_5pct.json")
            .read_text()
        )
        dead = 1
        tracer = enable_tracing()
        try:
            with active_plan(plan_doc):
                with sharded(chaos_index, replication=1) as (
                    router, cluster
                ):
                    cluster.kill_shard(dead)
                    for q, want in zip(chaos_queries[:4], baselines[:4]):
                        got = _mpa(router, q)
                        assert got.record_ids == want.record_ids
                        assert not got.degraded
                    journal_path = tmp_path / "cluster.journal.jsonl"
                    router.write_cluster_journal(journal_path)

            text = journal_path.read_text()
            assert validate_journal_lines(text) > 0
            records = [json.loads(line) for line in text.splitlines()[1:]]
            failovers = [r for r in records if r["kind"] == "failover"]
            assert failovers, "killed shard produced no failover events"
            assert any(r["shard_id"] == dead for r in failovers)
            assert all(
                isinstance(r["shard_id"], int) and r["shard_id"] >= 0
                for r in failovers
            )
            # a failover re-route is visible in the trace as a tagged
            # child span, and the forest stays orphan-free cluster-wide
            trace_path = tmp_path / "trace.json"
            write_trace(tracer, trace_path)
            assert validate_main(
                ["--trace", str(trace_path),
                 "--expect-roots", "serve/request"]
            ) == 0
            failover_spans = [
                span for root in tracer.roots
                for span in root.iter_spans()
                if span.attributes.get("failover")
            ]
            assert failover_spans
            assert all(
                span.name == "route/shard-call" for span in failover_spans
            )
        finally:
            disable_tracing()

    def test_degraded_loss_never_cached(self, chaos_index, chaos_queries,
                                        baselines):
        victim = None
        with active_plan(shard_loss_plan(0, 0)):
            with sharded(
                chaos_index, replication=0, result_cache_size=128
            ) as (router, cluster):
                lost = set(cluster.plan.shards[0])
                for q, want in zip(chaos_queries, baselines):
                    if lost & set(want.partition_ids_loaded):
                        victim = q
                        break
                assert victim is not None
                request = QueryRequest(
                    victim, op="knn", strategy="multi-partitions", k=10
                )
                first = router.query(request, timeout=60)
                second = router.query(request, timeout=60)
                report = router.stats()
        assert first.degraded and second.degraded
        assert report["result_cache_hits"] == 0
