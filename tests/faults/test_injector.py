"""Injector mechanics: order-independent draws, journals, telemetry."""

import json

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    active_plan,
    clear_injector,
    get_injector,
    install_plan,
)
from repro.telemetry.journal import get_journal, validate_journal_record
from repro.telemetry.metrics import get_registry


def plan(seed=0, rules=(), retry=None):
    doc = {"schema": "repro.faults/v1", "seed": seed, "rules": list(rules)}
    if retry is not None:
        doc["retry"] = retry
    return FaultPlan.from_dict(doc)


ALWAYS_CRASH = {"kind": "task-crash"}
HALF_CRASH = {"kind": "task-crash", "probability": 0.5}


class TestDeterministicDraws:
    def test_same_site_same_draw(self):
        a = FaultInjector(plan(seed=7))
        b = FaultInjector(plan(seed=7))
        key = ("stage", "local/x", 0, 3, 1)
        assert a._draw(*key) == b._draw(*key)

    def test_different_seed_different_draw(self):
        key = ("stage", "local/x", 0, 3, 1)
        draws = {FaultInjector(plan(seed=s))._draw(*key) for s in range(20)}
        assert len(draws) > 15  # hash-distinct with overwhelming odds

    def test_draws_are_uniformish(self):
        inj = FaultInjector(plan(seed=1))
        draws = [inj._draw("site", i) for i in range(2000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.45 < sum(draws) / len(draws) < 0.55

    def test_next_seq_is_per_key(self):
        inj = FaultInjector(plan())
        assert inj.next_seq("partition", 3) == 0
        assert inj.next_seq("partition", 3) == 1
        assert inj.next_seq("partition", 4) == 0
        assert inj.next_seq("cache", 3) == 0

    def test_backoff_jitter_reproducible_and_bounded(self):
        inj = FaultInjector(plan(seed=5))
        pause = inj.backoff_s(2, "stage", "x", 0, 1)
        assert pause == inj.backoff_s(2, "stage", "x", 0, 1)
        base = inj.retry.backoff_s(2, draw=0.0)
        assert base <= pause <= base * (1.0 + inj.retry.jitter)


class TestMatching:
    def test_probability_zero_never_fires(self):
        inj = FaultInjector(plan(rules=[
            {"kind": "task-crash", "probability": 0.0},
        ]))
        assert all(
            inj.task_fault("s", 0, task, 1) is None for task in range(50)
        )

    def test_probability_one_always_fires(self):
        inj = FaultInjector(plan(rules=[ALWAYS_CRASH]))
        assert all(
            inj.task_fault("s", 0, task, 1) is not None for task in range(20)
        )

    def test_probability_fires_roughly_at_rate(self):
        inj = FaultInjector(plan(seed=3, rules=[HALF_CRASH]))
        fired = sum(
            inj.task_fault("s", 0, task, 1) is not None
            for task in range(400)
        )
        assert 140 < fired < 260

    def test_scope_selectors_respected_per_hook(self):
        inj = FaultInjector(plan(rules=[
            {"kind": "partition-load-error", "partition_id": 3},
        ]))
        assert inj.partition_load_fault(3, 0, 1) is not None
        assert inj.partition_load_fault(4, 0, 1) is None
        # task-crash rules never fire at partition-load sites.
        inj = FaultInjector(plan(rules=[ALWAYS_CRASH]))
        assert inj.partition_load_fault(3, 0, 1) is None

    def test_first_matching_rule_wins(self):
        inj = FaultInjector(plan(rules=[
            {"kind": "task-slow", "delay_ms": 7.0},
            ALWAYS_CRASH,
        ]))
        fault = inj.task_fault("s", 0, 0, 1)
        assert fault.kind == "task-slow"
        assert fault.delay_ms == 7.0

    def test_cached_rules_only_fire_on_cache_hook(self):
        cached_rule = {"kind": "partition-load-error", "cached": True}
        inj = FaultInjector(plan(rules=[cached_rule]))
        assert inj.partition_load_fault(3, 0, 1) is None
        assert inj.cached_copy_lost(3)
        inj = FaultInjector(plan(rules=[
            {"kind": "partition-load-error"},
        ]))
        assert not inj.cached_copy_lost(3)
        assert inj.partition_load_fault(3, 0, 1) is not None

    def test_drop_reply_deterministic_per_payload(self):
        rules = [{"kind": "socket-drop", "probability": 0.5}]
        a = FaultInjector(plan(seed=9, rules=rules))
        b = FaultInjector(plan(seed=9, rules=rules))
        payloads = [f'{{"op": "knn", "q": {i}}}'.encode() for i in range(40)]
        assert [a.drop_reply(p) for p in payloads] == \
            [b.drop_reply(p) for p in payloads]
        assert any(a.drop_reply(p) for p in payloads) or True  # smoke


class TestJournal:
    def test_order_independent_byte_identical(self):
        rules = [HALF_CRASH, {"kind": "storage-read-error",
                              "probability": 0.5}]
        sites = [("stage", "s", 0, task, 1) for task in range(30)]
        blocks = list(range(20))

        def run(order):
            inj = FaultInjector(plan(seed=11, rules=rules))
            for kind, args in order:
                if kind == "task":
                    inj.task_fault("s", args[2], args[3], args[4])
                else:
                    inj.storage_fault(args, 0, 1)
            return inj.journal_lines()

        forward = [("task", s) for s in sites] + \
            [("storage", b) for b in blocks]
        backward = list(reversed(forward))
        assert run(forward) == run(backward)
        assert run(forward)  # something actually fired

    def test_entries_have_no_timestamps(self):
        inj = FaultInjector(plan(rules=[ALWAYS_CRASH]))
        inj.task_fault("s", 0, 0, 1)
        [entry] = inj.journal()
        assert "ts" not in entry and "seq" not in entry
        assert entry["kind"] == "task-crash"
        assert entry["site"] == "stage/s/0/0/1"

    def test_stats_count_by_kind(self):
        inj = FaultInjector(plan(rules=[
            {"kind": "storage-read-error"},
            ALWAYS_CRASH,
        ]))
        inj.storage_fault(1, 0, 1)
        inj.storage_fault(2, 0, 1)
        inj.task_fault("s", 0, 0, 1)
        stats = inj.stats()
        assert stats["injected"] == 3
        assert stats["by_kind"] == {
            "storage-read-error": 2, "task-crash": 1,
        }


class TestTelemetryIntegration:
    def test_fired_faults_reach_metrics_and_journal(self):
        registry = get_registry()
        journal = get_journal()
        before = journal.stats()["by_kind"].get("fault", 0)
        injected_before = getattr(
            registry.get("faults_injected_total"), "value", 0
        )
        inj = FaultInjector(plan(rules=[ALWAYS_CRASH]))
        inj.task_fault("local/convert", 0, 2, 1)
        inj.count_retry()
        assert registry.get("faults_injected_total").value == \
            injected_before + 1
        assert registry.get("faults_task_crash_total").value >= 1
        assert registry.get("faults_retries_total").value >= 1
        records = [
            r for r in journal.tail(50, kind="fault")
            if r.get("site") == "stage/local/convert/0/2/1"
        ]
        assert records, journal.stats()
        assert journal.stats()["by_kind"]["fault"] > before
        for record in records:
            validate_journal_record(record)
            assert record["injected"] == "task-crash"

    def test_fault_record_without_injected_field_invalid(self):
        record = get_journal().record("fault", injected="task-crash")
        validate_journal_record(record)
        bad = dict(record)
        del bad["injected"]
        with pytest.raises(ValueError, match="injected"):
            validate_journal_record(bad)


class TestInstallation:
    def test_install_get_clear(self):
        assert get_injector() is None
        injector = install_plan(plan())
        assert get_injector() is injector
        clear_injector()
        assert get_injector() is None

    def test_install_from_dict_and_path(self, tmp_path):
        injector = install_plan({"schema": "repro.faults/v1", "seed": 3})
        assert injector.plan.seed == 3
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"schema": "repro.faults/v1", "seed": 8}))
        assert install_plan(path).plan.seed == 8
        clear_injector()

    def test_active_plan_scopes_installation(self):
        with active_plan(plan(seed=4)) as injector:
            assert get_injector() is injector
        assert get_injector() is None

    def test_active_plan_clears_on_error(self):
        with pytest.raises(RuntimeError):
            with active_plan(plan()):
                raise RuntimeError("boom")
        assert get_injector() is None
