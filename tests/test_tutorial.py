"""Keep the tutorial honest: every python block in docs/TUTORIAL.md runs."""

import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def test_tutorial_snippets_execute():
    source = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", source, re.S)
    assert len(blocks) >= 5, "tutorial lost its code blocks"
    code = "\n".join(blocks)
    namespace: dict = {}
    exec(compile(code, str(TUTORIAL), "exec"), namespace)
    # Spot-check the walkthrough reached its landmarks.
    assert namespace["signature"].startswith(namespace["coarse"])
    assert namespace["index"].n_records == 40_000
    assert namespace["exact_match"] is not None
