"""Cross-backend equivalence: serial, threads, and processes executors
must be observationally identical.

The executor layer changes *how fast the wall clock runs*, never what is
computed: index contents, query answers, ledger stage structure (labels,
task counts, analytic io/network charges), and partition layouts are all
asserted equal against the serial reference.  Measured CPU seconds are
the one quantity that legitimately varies between backends, so they are
only sanity-checked.

``jobs=2`` is passed explicitly so the parallel paths are exercised even
on single-core CI runners (jobs=1 short-circuits to inline execution).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.cluster.executors import make_executor
from repro.core import (
    TardisConfig,
    build_tardis_index,
    exact_match,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.core.batch import batch_exact_match, batch_knn_target_node
from repro.tsdb import random_walk

BACKENDS = ("serial", "threads", "processes")

N_SERIES = 900
CONFIG_KW = dict(g_max_size=150, l_max_size=25, pth=4)


def _executor(kind):
    return make_executor(kind, jobs=2)


@pytest.fixture(scope="module")
def dataset():
    return random_walk(N_SERIES, length=64, seed=1234).z_normalized()


@pytest.fixture(scope="module")
def queries():
    return random_walk(20, length=64, seed=4321).z_normalized().values


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture(scope="module")
def built(dataset):
    """index + cluster per backend, built once and shared by this module."""
    out = {}
    for kind in BACKENDS:
        cluster = SimCluster(
            n_workers=TardisConfig().n_workers, executor=_executor(kind)
        )
        index = build_tardis_index(
            dataset, TardisConfig(**CONFIG_KW), cluster=cluster
        )
        out[kind] = (index, cluster)
    return out


def ledger_shape(ledger) -> list[tuple]:
    """The deterministic face of a ledger: per-stage labels, task counts
    and analytic io/network charges (cpu/wall are measured, so excluded)."""
    return [
        (label, stats.tasks, round(stats.io_s, 12), round(stats.network_s, 12))
        for label, stats in ledger.stages.items()
    ]


def ledger_outline(ledger) -> list[tuple]:
    """Labels and task counts only — for stages whose io charge includes
    measured time (the batch partition pass sums per-group wall clocks)."""
    return [(label, stats.tasks) for label, stats in ledger.stages.items()]


def partition_layout(index) -> dict[int, list]:
    return {
        pid: sorted(e[1] for e in part.all_entries())
        for pid, part in index.partitions.items()
    }


class TestBuildEquivalence:
    def test_partition_layouts_identical(self, built):
        reference = partition_layout(built["serial"][0])
        for kind in BACKENDS[1:]:
            assert partition_layout(built[kind][0]) == reference

    def test_ledger_stage_structure_identical(self, built):
        reference = ledger_shape(built["serial"][1].ledger)
        for kind in BACKENDS[1:]:
            assert ledger_shape(built[kind][1].ledger) == reference

    def test_global_index_identical(self, built):
        ref = built["serial"][0].global_index
        for kind in BACKENDS[1:]:
            other = built[kind][0].global_index
            assert other.n_partitions == ref.n_partitions
            ref_nodes = sorted(
                (n.signature, n.count, n.partition_id)
                for n in ref.tree.iter_nodes()
            )
            other_nodes = sorted(
                (n.signature, n.count, n.partition_id)
                for n in other.tree.iter_nodes()
            )
            assert other_nodes == ref_nodes

    def test_measured_costs_are_sane(self, built):
        for kind in BACKENDS:
            ledger = built[kind][1].ledger
            assert ledger.clock_s > 0
            assert all(s.cpu_s >= 0 for s in ledger.stages.values())


class TestQueryEquivalence:
    def test_exact_match_answers(self, built, dataset, queries):
        ref_index = built["serial"][0]
        probes = list(dataset.values[:5]) + list(queries[:5])
        expected = [exact_match(ref_index, q) for q in probes]
        for kind in BACKENDS[1:]:
            index = built[kind][0]
            for q, ref in zip(probes, expected):
                got = exact_match(index, q)
                assert got.record_ids == ref.record_ids
                assert got.bloom_rejected == ref.bloom_rejected
                assert got.partition_ids_loaded == ref.partition_ids_loaded
                assert got.nodes_visited == ref.nodes_visited

    @pytest.mark.parametrize(
        "strategy",
        [
            knn_target_node_access,
            knn_one_partition_access,
            knn_multi_partitions_access,
        ],
        ids=["target-node", "one-partition", "multi-partitions"],
    )
    def test_knn_answers(self, built, queries, strategy):
        ref_index = built["serial"][0]
        expected = [strategy(ref_index, q, 10) for q in queries[:8]]
        for kind in BACKENDS[1:]:
            index = built[kind][0]
            for q, ref in zip(queries[:8], expected):
                got = strategy(index, q, 10)
                assert got.record_ids == ref.record_ids
                assert got.distances == pytest.approx(ref.distances)
                assert got.partition_ids_loaded == ref.partition_ids_loaded
                assert got.nodes_visited == ref.nodes_visited
                assert got.nodes_pruned == ref.nodes_pruned
                assert ledger_shape(got.ledger) == ledger_shape(ref.ledger)


class TestBatchEquivalence:
    def test_batch_exact_match(self, built, dataset, queries):
        probes = np.vstack([dataset.values[:8], queries[:8]])
        serial_index = built["serial"][0]
        reference = batch_exact_match(
            serial_index, probes, executor=_executor("serial")
        )
        for kind in BACKENDS[1:]:
            index = built[kind][0]
            report = batch_exact_match(index, probes, executor=_executor(kind))
            assert report.partitions_loaded == reference.partitions_loaded
            for got, ref in zip(report.results, reference.results):
                assert got.record_ids == ref.record_ids
                assert got.bloom_rejected == ref.bloom_rejected
                assert got.partition_ids_loaded == ref.partition_ids_loaded
            assert ledger_outline(report.ledger) == ledger_outline(
                reference.ledger
            )

    def test_batch_knn(self, built, queries):
        serial_index = built["serial"][0]
        reference = batch_knn_target_node(
            serial_index, queries, k=5, executor=_executor("serial")
        )
        for kind in BACKENDS[1:]:
            index = built[kind][0]
            report = batch_knn_target_node(
                index, queries, k=5, executor=_executor(kind)
            )
            assert report.partitions_loaded == reference.partitions_loaded
            for got, ref in zip(report.results, reference.results):
                assert got.record_ids == ref.record_ids
                assert got.distances == pytest.approx(ref.distances)
                assert got.strategy == ref.strategy
                assert got.partition_ids_loaded == ref.partition_ids_loaded
                assert got.nodes_visited == ref.nodes_visited
            assert ledger_outline(report.ledger) == ledger_outline(
                reference.ledger
            )

    def test_batch_answers_match_interactive(self, built, queries, backend):
        """Within each backend, batch and interactive answers agree."""
        index = built[backend][0]
        report = batch_knn_target_node(
            index, queries[:6], k=5, executor=_executor(backend)
        )
        for q, got in zip(queries[:6], report.results):
            interactive = knn_target_node_access(index, q, 5)
            assert got.record_ids == interactive.record_ids


class TestFaultJournalEquivalence:
    """Same fault plan + seed ⇒ byte-identical fault journals and
    identical results whether tasks run serially or on threads.

    The injector's draws hash (seed, rule, site) instead of consuming a
    shared RNG stream, so thread interleaving cannot move a fault from
    one site to another.  (The processes backend recovers identically
    but journals inside forked children, so only serial/threads can
    assert on journal bytes.)
    """

    FAULT_PLAN = {
        "schema": "repro.faults/v1",
        "seed": 13,
        "rules": [
            {"kind": "task-crash", "stage": "*", "attempt": [1, 2],
             "probability": 0.3},
            {"kind": "storage-read-error", "attempt": [1],
             "probability": 0.3},
            {"kind": "task-slow", "stage": "local/*", "delay_ms": 0.1,
             "probability": 0.2},
        ],
    }

    def _run(self, kind, dataset, queries):
        from repro.faults import active_plan

        with active_plan(self.FAULT_PLAN) as injector:
            cluster = SimCluster(
                n_workers=TardisConfig().n_workers, executor=_executor(kind)
            )
            index = build_tardis_index(
                dataset, TardisConfig(**CONFIG_KW), cluster=cluster
            )
            report = batch_knn_target_node(
                index, queries[:8], k=5, executor=_executor(kind)
            )
            journal = injector.journal_lines()
            stats = injector.stats()
        return index, report, journal, stats

    def test_journals_byte_identical_serial_vs_threads(self, dataset, queries):
        ref_index, ref_report, ref_journal, ref_stats = self._run(
            "serial", dataset, queries
        )
        assert ref_stats["injected"] > 0  # the plan actually fired
        index, report, journal, _stats = self._run("threads", dataset, queries)
        assert journal == ref_journal
        assert partition_layout(index) == partition_layout(ref_index)
        for got, ref in zip(report.results, ref_report.results):
            assert got.record_ids == ref.record_ids
            assert got.distances == pytest.approx(ref.distances)

    def test_same_seed_reruns_identically_per_backend(self, dataset, queries):
        for kind in ("serial", "threads"):
            first = self._run(kind, dataset, queries)
            second = self._run(kind, dataset, queries)
            assert first[2] == second[2], kind


class TestHarnessEquivalence:
    def test_evaluate_knn_reports_identical(self, built, dataset, queries):
        from repro.experiments.harness import evaluate_knn

        def run(kind):
            return evaluate_knn(
                dataset,
                queries[:6],
                k=5,
                tardis=built[kind][0],
                methods=("target-node", "multi-partitions"),
                executor=_executor(kind),
            )

        reference = run("serial")
        for kind in BACKENDS[1:]:
            for got, ref in zip(run(kind), reference):
                assert got.method == ref.method
                assert got.recall == pytest.approx(ref.recall)
                assert got.error_ratio == pytest.approx(ref.error_ratio, nan_ok=True)
                assert got.avg_candidates == pytest.approx(ref.avg_candidates)
                assert got.avg_partitions == pytest.approx(ref.avg_partitions)
