"""Property tests for streaming ingest: interleaved inserts and queries
must be indistinguishable from batch-building over the full data.

The comparisons use the layout-independent surfaces — ``exact_match``
and ``knn_exact`` — because a streamed index and a rebuilt index
legitimately partition records differently; what must agree is every
*answer*, including the ``(distance, record_id)`` tie-break order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TardisConfig,
    build_tardis_index,
    exact_match,
    knn_exact,
    plan_rebalance,
    rebalance_index,
)
from repro.tsdb import random_walk

LENGTH = 32
BASE_N = 240
POOL_N = 120

_dataset = random_walk(BASE_N + POOL_N, length=LENGTH, seed=123).z_normalized()
_queries = random_walk(6, length=LENGTH, seed=321).z_normalized().values


def _config() -> TardisConfig:
    return TardisConfig(g_max_size=60, l_max_size=12, seed=7)


def _build_base():
    return build_tardis_index(_dataset.subset(np.arange(BASE_N)), _config())


def _rebuilt(n_appended: int):
    """Batch build over base + the first ``n_appended`` pool rows —
    record ids match the streamed index by construction (0..n-1)."""
    return build_tardis_index(_dataset.subset(np.arange(BASE_N + n_appended)),
                              _config())


def _answers(index, query, k=5):
    exact = exact_match(index, query)
    knn = knn_exact(index, query, k)
    return (
        sorted(exact.record_ids),
        [(n.distance, n.record_id) for n in knn.neighbors],
    )


class TestInterleavedEquivalence:
    @given(
        chunks=st.lists(st.integers(1, 16), min_size=1, max_size=6),
        rebalance_after=st.integers(0, 5),
    )
    @settings(max_examples=10, deadline=None)
    def test_stream_then_query_equals_rebuild(self, chunks, rebalance_after):
        index = _build_base()
        pool = _dataset.values[BASE_N:]
        cursor = 0
        for i, size in enumerate(chunks):
            size = min(size, POOL_N - cursor)
            if size <= 0:
                break
            index.ingest(pool[cursor:cursor + size])
            cursor += size
            if i == rebalance_after:
                rebalance_index(index, overflow_factor=1.1)
            # Interleaved read: the streamed record is immediately
            # findable with its assigned id.
            probe = pool[cursor - 1]
            assert (BASE_N + cursor - 1) in exact_match(
                index, probe
            ).record_ids
        index.validate()
        rebuilt = _rebuilt(cursor)
        assert index.n_records == rebuilt.n_records
        for query in _queries:
            assert _answers(index, query) == _answers(rebuilt, query)
        # Appended rows themselves: identical ids from both paths, and
        # the kNN tie-break puts the distance-zero self-match first.
        for offset in (0, cursor - 1):
            row = pool[offset]
            got = _answers(index, row)
            assert got == _answers(rebuilt, row)
            assert got[1][0][1] == BASE_N + offset

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_knn_tiebreak_on_duplicates(self, seed):
        """Equal-distance neighbors surface in ascending record-id
        order even when duplicates arrive via streaming."""
        index = _build_base()
        rng = np.random.default_rng(seed)
        row = _dataset.values[int(rng.integers(BASE_N))]
        dup_ids = index.ingest(np.stack([row, row])).record_ids
        result = knn_exact(index, row, 4)
        zero = [n.record_id for n in result.neighbors
                if n.distance == 0.0]
        assert zero == sorted(zero)
        assert set(dup_ids) <= set(zero)


class TestRebalanceInvariants:
    @given(
        n_extra=st.integers(0, POOL_N),
        factor=st.sampled_from([1.0, 1.1, 1.5, 2.0]),
    )
    @settings(max_examples=10, deadline=None)
    def test_rebalance_preserves_routing_and_answers(self, n_extra, factor):
        index = _build_base()
        if n_extra:
            index.ingest(_dataset.values[BASE_N:BASE_N + n_extra])
        before = [_answers(index, q) for q in _queries]
        report = rebalance_index(index, overflow_factor=factor)
        # validate() checks the routing invariant: every entry lives in
        # the partition Tardis-G routes its signature to.
        index.validate()
        assert index.n_records == BASE_N + n_extra
        after = [_answers(index, q) for q in _queries]
        assert before == after
        if report.partitions_split:
            assert report.records_moved > 0

    @given(n_extra=st.integers(1, POOL_N))
    @settings(max_examples=8, deadline=None)
    def test_plan_is_pure(self, n_extra):
        """Planning must not mutate the index — the online rebalancer
        plans outside the gate and applies inside it."""
        index = _build_base()
        index.ingest(_dataset.values[BASE_N:BASE_N + n_extra])
        snapshot = {
            pid: sorted(p.block.record_ids.tolist())
            for pid, p in index.partitions.items()
        }
        plan_rebalance(index, overflow_factor=1.0)
        assert snapshot == {
            pid: sorted(p.block.record_ids.tolist())
            for pid, p in index.partitions.items()
        }
        index.validate()
