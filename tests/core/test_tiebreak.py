"""kNN tie-break regression: equal distances resolve by ascending record
id, identically on every query path.

Built around the failure mode that motivated the fix: a dataset holding
several byte-identical copies of the same series, queried with ``k``
cutting *through* the duplicate group.  Without a deterministic
secondary key the chosen subset depends on scan order — heap eviction
order in exact search, leaf order in target-node access, concatenation
order in the multi-partition merge — and strategies (or executor
backends) disagree with the ground truth on which duplicate ids they
return.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    TardisConfig,
    batch_knn_target_node,
    brute_force_knn,
    build_tardis_index,
    knn_exact,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.tsdb import random_walk
from repro.tsdb.series import TimeSeriesDataset

LENGTH = 48
N_BASE = 900
N_COPIES = 5  # copies of the duplicated series, ids 0..4


@pytest.fixture(scope="module")
def dup_index():
    """An index whose first N_COPIES records are the same series.

    The duplicates share one signature, so they land in one leaf of one
    partition — every strategy's candidate set contains all of them.
    """
    base = random_walk(N_BASE, length=LENGTH, seed=31).z_normalized()
    dup = np.tile(base.values[0], (N_COPIES, 1))
    values = np.vstack([dup, base.values[1:]])
    dataset = TimeSeriesDataset(values, name="dup")
    config = TardisConfig(g_max_size=200, l_max_size=30, pth=4)
    index = build_tardis_index(dataset, config)
    return index, dataset


@pytest.fixture(scope="module")
def dup_query(dup_index):
    _index, dataset = dup_index
    return dataset.values[0]


K_AT_BOUNDARY = [1, 2, N_COPIES - 1, N_COPIES, N_COPIES + 3]


class TestGroundTruthTieBreak:
    @pytest.mark.parametrize("k", K_AT_BOUNDARY)
    def test_ties_resolve_by_ascending_rid(self, dup_index, dup_query, k):
        _index, dataset = dup_index
        got = brute_force_knn(dataset, dup_query, k)
        n_zero = min(k, N_COPIES)
        assert [n.record_id for n in got[:n_zero]] == list(range(n_zero))
        assert all(n.distance == 0.0 for n in got[:n_zero])
        # Overall order is (distance, record_id) lexicographic.
        keys = [(n.distance, n.record_id) for n in got]
        assert keys == sorted(keys)


class TestStrategiesAgree:
    @pytest.mark.parametrize("k", K_AT_BOUNDARY)
    def test_all_paths_match_ground_truth(self, dup_index, dup_query, k):
        index, dataset = dup_index
        truth = [(n.distance, n.record_id)
                 for n in brute_force_knn(dataset, dup_query, k)]

        def key(result):
            return [(n.distance, n.record_id) for n in result.neighbors]

        tna = knn_target_node_access(index, dup_query, k)
        opa = knn_one_partition_access(index, dup_query, k)
        mpa = knn_multi_partitions_access(index, dup_query, k)
        exact = knn_exact(index, dup_query, k)
        # The approximate strategies see every duplicate (one shared
        # leaf), so on the tied prefix they must agree with truth; the
        # exact search must match truth outright.
        n_zero = min(k, N_COPIES)
        for result in (tna, opa, mpa):
            assert key(result)[:n_zero] == truth[:n_zero]
        assert key(exact) == truth

    @pytest.mark.parametrize("k", [N_COPIES - 1, N_COPIES])
    def test_batch_matches_interactive(self, dup_index, dup_query, k):
        index, _dataset = dup_index
        queries = np.vstack([dup_query, dup_query])
        report = batch_knn_target_node(index, queries, k=k)
        interactive = knn_target_node_access(index, dup_query, k)
        for result in report.results:
            assert [(n.distance, n.record_id) for n in result.neighbors] == [
                (n.distance, n.record_id) for n in interactive.neighbors
            ]


class TestExactSearchHeapOrder:
    def test_kth_tie_prefers_smaller_rid(self, dup_index, dup_query):
        """With k == N_COPIES every zero-distance duplicate fits; with
        k == N_COPIES - 1 the heap must evict the *largest* duplicate id,
        whatever order leaves were scanned in."""
        index, _dataset = dup_index
        k = N_COPIES - 1
        got = knn_exact(index, dup_query, k)
        assert [n.record_id for n in got.neighbors] == list(range(k))

    def test_duplicates_across_insert_order(self):
        """Duplicates appended *last* (high ids, scanned late) must not
        displace equal-distance low ids already in the heap."""
        base = random_walk(300, length=LENGTH, seed=77).z_normalized()
        dup = np.tile(base.values[5], (3, 1))
        values = np.vstack([base.values, dup])  # dup ids 300, 301, 302
        dataset = TimeSeriesDataset(values, name="dup-late")
        index = build_tardis_index(
            dataset, TardisConfig(g_max_size=200, l_max_size=30, pth=4)
        )
        query = base.values[5]
        got = knn_exact(index, query, 3)
        # Four zero-distance copies exist (ids 5, 300, 301, 302); the
        # three smallest ids win.
        assert [n.record_id for n in got.neighbors] == [5, 300, 301]
        truth = brute_force_knn(dataset, query, 3)
        assert [n.record_id for n in truth] == [5, 300, 301]
