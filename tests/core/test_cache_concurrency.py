"""Concurrent stress tests for the shared PartitionCache.

The serving tier hands one cache to many executor worker threads at
once (admit from batch groups, invalidate from maintenance, stats from
the SLO reporter).  These tests hammer all three entry points together
and assert the accounting invariants that only hold when every mutation
is lock-protected.
"""

import threading

import pytest

from repro.core.cache import PartitionCache

N_THREADS = 8
OPS_PER_THREAD = 2000
ID_SPACE = 32


class TestConcurrentAdmit:
    def test_accounting_consistent_under_contention(self):
        cache = PartitionCache(8)
        barrier = threading.Barrier(N_THREADS)
        errors: list[BaseException] = []

        def hammer(rank: int) -> None:
            try:
                barrier.wait()
                for i in range(OPS_PER_THREAD):
                    cache.admit((rank * 7 + i * 13) % ID_SPACE)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(rank,))
            for rank in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Every admit is exactly one hit or one miss — lost updates would
        # break this sum — and residency never exceeds capacity.
        assert cache.hits + cache.misses == N_THREADS * OPS_PER_THREAD
        assert len(cache.resident_ids) <= cache.capacity
        # Evictions follow from misses overflowing capacity.
        assert cache.evictions == cache.misses - len(cache.resident_ids)

    def test_admit_invalidate_stats_interleaved(self):
        cache = PartitionCache(4)
        stop = threading.Event()
        errors: list[BaseException] = []

        def admitter(rank: int) -> None:
            try:
                i = 0
                while not stop.is_set():
                    cache.admit((rank + i) % ID_SPACE)
                    i += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def invalidator() -> None:
            try:
                i = 0
                while not stop.is_set():
                    cache.invalidate(i % ID_SPACE)
                    if i % 97 == 0:
                        cache.clear()
                    i += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    stats = cache.stats()
                    assert 0 <= stats["resident"] <= stats["capacity"]
                    assert 0.0 <= stats["hit_rate"] <= 1.0
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = (
            [threading.Thread(target=admitter, args=(r,)) for r in range(4)]
            + [threading.Thread(target=invalidator),
               threading.Thread(target=reader)]
        )
        for t in threads:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in threads:
            t.join(10.0)
        timer.cancel()
        stop.set()
        assert not errors
        assert not any(t.is_alive() for t in threads)

    def test_invalidation_listeners_fire_concurrently(self):
        cache = PartitionCache(4)
        seen: list[int] = []
        lock = threading.Lock()

        def listener(pid: int) -> None:
            with lock:
                seen.append(pid)

        cache.subscribe_invalidations(listener)

        def worker(rank: int) -> None:
            for i in range(200):
                cache.admit((rank + i) % 8)
                cache.invalidate((rank + i) % 8)

        threads = [
            threading.Thread(target=worker, args=(r,)) for r in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 4 * 200

    def test_listener_fires_even_for_non_resident(self):
        cache = PartitionCache(2)
        fired: list[int] = []
        cache.subscribe_invalidations(fired.append)
        cache.invalidate(99)  # never admitted
        assert fired == [99]


def test_eviction_invariant_is_exact_serial():
    """Serial sanity companion to the concurrent invariant above."""
    cache = PartitionCache(3)
    for pid in range(10):
        cache.admit(pid)
    assert cache.misses == 10
    assert cache.evictions == 7
    assert cache.resident_ids == [7, 8, 9]
    with pytest.raises(ValueError):
        PartitionCache(-1)
