"""Tests for ground-truth computation (brute force and the paper's pruned
method)."""

import numpy as np
import pytest

from repro.core.ground_truth import (
    GroundTruthError,
    brute_force_knn,
    pruned_ground_truth,
)
from repro.tsdb import TimeSeriesDataset


class TestBruteForce:
    def test_matches_naive_loop(self, rw_small, heldout_queries):
        q = heldout_queries[0]
        k = 5
        result = brute_force_knn(rw_small, q, k)
        naive = sorted(
            (float(np.linalg.norm(q - row)), int(rid))
            for rid, row in rw_small
        )[:k]
        assert [n.record_id for n in result] == [rid for _d, rid in naive]
        assert [n.distance for n in result] == pytest.approx(
            [d for d, _rid in naive]
        )

    def test_sorted_ascending(self, rw_small, heldout_queries):
        result = brute_force_knn(rw_small, heldout_queries[1], 20)
        dists = [n.distance for n in result]
        assert dists == sorted(dists)

    def test_self_query_distance_zero(self, rw_small):
        result = brute_force_knn(rw_small, rw_small.values[3], 1)
        assert result[0].record_id == 3
        assert result[0].distance == 0.0

    def test_invalid_k(self, rw_small):
        with pytest.raises(ValueError):
            brute_force_knn(rw_small, rw_small.values[0], 0)

    def test_k_equal_to_dataset(self):
        ds = TimeSeriesDataset(np.random.default_rng(0).normal(size=(5, 8)))
        result = brute_force_knn(ds, ds.values[0], 5)
        assert len(result) == 5
        assert {n.record_id for n in result} == {0, 1, 2, 3, 4}


class TestPrunedGroundTruth:
    def test_equals_brute_force_with_generous_threshold(
        self, tardis_small, rw_small, heldout_queries
    ):
        for q in heldout_queries[:8]:
            exact = brute_force_knn(rw_small, q, 10)
            pruned = pruned_ground_truth(tardis_small, q, 10, threshold=20.0)
            assert [n.record_id for n in pruned] == [n.record_id for n in exact]

    def test_paper_threshold_works_at_small_scale(
        self, tardis_small, rw_small, heldout_queries
    ):
        """The paper's 7.5 threshold certifies the answer on this workload."""
        q = heldout_queries[0]
        exact = brute_force_knn(rw_small, q, 5)
        pruned = pruned_ground_truth(tardis_small, q, 5, threshold=7.5)
        assert [n.record_id for n in pruned] == [n.record_id for n in exact]

    def test_too_tight_threshold_raises(self, tardis_small, heldout_queries):
        with pytest.raises(GroundTruthError):
            pruned_ground_truth(tardis_small, heldout_queries[0], 500,
                                threshold=0.01)

    def test_unclustered_rejected(self, rw_small, small_config):
        from repro.core import build_tardis_index

        index = build_tardis_index(rw_small, small_config, clustered=False)
        with pytest.raises(RuntimeError, match="clustered"):
            pruned_ground_truth(index, rw_small.values[0], 3)
