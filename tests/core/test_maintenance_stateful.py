"""Stateful property test: the index stays correct under any interleaving
of inserts, deletes, exact-match and kNN queries.

A hypothesis rule-based state machine mutates a live TARDIS index while
maintaining a naive model (a dict of record id → series); after every
step the index must agree with the model.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import TardisConfig, build_tardis_index, exact_match
from repro.core.exact_search import knn_exact
from repro.tsdb import random_walk
from repro.tsdb.series import z_normalize

LENGTH = 32
SEED_POOL = 512


def _series(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return z_normalize(np.cumsum(rng.standard_normal(LENGTH)))


class IndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        base = random_walk(200, length=LENGTH, seed=77).z_normalized()
        self.index = build_tardis_index(
            base, TardisConfig(g_max_size=50, l_max_size=10, pth=3)
        )
        self.model: dict[int, np.ndarray] = {
            int(rid): row.copy() for rid, row in base
        }

    @rule(seed=st.integers(0, SEED_POOL))
    def insert(self, seed):
        series = _series(seed)
        rid = self.index.insert_series(series)
        assert rid not in self.model
        self.model[rid] = series

    @precondition(lambda self: len(self.model) > 1)
    @rule(pick=st.integers(0, 10_000))
    def delete_existing(self, pick):
        rid = sorted(self.model)[pick % len(self.model)]
        assert self.index.delete_series(self.model[rid], rid)
        del self.model[rid]

    @rule(seed=st.integers(0, SEED_POOL))
    def delete_absent_is_noop(self, seed):
        before = self.index.n_records
        assert not self.index.delete_series(_series(seed), 999_999)
        assert self.index.n_records == before

    @precondition(lambda self: self.model)
    @rule(pick=st.integers(0, 10_000))
    def exact_match_finds_member(self, pick):
        rid = sorted(self.model)[pick % len(self.model)]
        result = exact_match(self.index, self.model[rid])
        assert rid in result.record_ids

    @precondition(lambda self: len(self.model) >= 3)
    @rule(seed=st.integers(SEED_POOL + 1, SEED_POOL + 50))
    def exact_knn_matches_model(self, seed):
        query = _series(seed)
        result = knn_exact(self.index, query, 3)
        expected = sorted(
            (float(np.linalg.norm(query - row)), rid)
            for rid, row in self.model.items()
        )[:3]
        assert result.record_ids == [rid for _d, rid in expected]

    @invariant()
    def counts_consistent(self):
        assert self.index.n_records == len(self.model)
        total = sum(p.n_records for p in self.index.partitions.values())
        assert total == len(self.model)


TestIndexMachine = IndexMachine.TestCase
TestIndexMachine.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
