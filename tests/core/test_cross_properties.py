"""Cross-module property tests: random configurations, end to end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TardisConfig,
    build_tardis_index,
    exact_match,
    load_index,
    save_index,
)
from repro.core.isaxt import batch_signatures
from repro.tsdb import random_walk

configs = st.builds(
    TardisConfig,
    word_length=st.sampled_from([4, 8]),
    cardinality_bits=st.integers(2, 7),
    g_max_size=st.integers(50, 400),
    l_max_size=st.integers(5, 60),
    sampling_fraction=st.sampled_from([0.05, 0.1, 0.5, 1.0]),
    pth=st.integers(1, 6),
)


class TestRandomConfigs:
    @given(config=configs, seed=st.integers(0, 50))
    @settings(max_examples=12, deadline=None)
    def test_build_indexes_everything_and_validates(self, config, seed):
        dataset = random_walk(600, length=32, seed=seed).z_normalized()
        index = build_tardis_index(dataset, config)
        index.validate()
        assert sum(p.n_records for p in index.partitions.values()) == 600

    @given(config=configs)
    @settings(max_examples=8, deadline=None)
    def test_exact_match_recall_any_config(self, config):
        dataset = random_walk(500, length=32, seed=3).z_normalized()
        index = build_tardis_index(dataset, config)
        for row in (0, 250, 499):
            assert row in exact_match(index, dataset.values[row]).record_ids

    @given(config=configs)
    @settings(max_examples=6, deadline=None)
    def test_persistence_roundtrip_any_config(self, config, tmp_path_factory):
        dataset = random_walk(400, length=32, seed=9).z_normalized()
        index = build_tardis_index(dataset, config)
        target = tmp_path_factory.mktemp("cfg") / "idx"
        save_index(index, target)
        back = load_index(target)
        back.validate()
        assert back.n_records == 400
        assert 7 in exact_match(back, dataset.values[7]).record_ids


class TestRouteTotality:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_any_signature_routes_to_valid_partition(self, tardis_small, seed):
        """Routing is total: every possible full-cardinality signature maps
        to an existing partition, sampled or not."""
        rng = np.random.default_rng(seed)
        config = tardis_small.config
        symbols = rng.integers(
            0, 1 << config.cardinality_bits,
            size=(1, config.word_length), dtype=np.uint32,
        )
        signature = batch_signatures(symbols, config.cardinality_bits)[0]
        pid = tardis_small.global_index.route(signature)
        assert pid in tardis_small.partitions
