"""End-to-end tests for TARDIS index construction on the cluster engine."""

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core import TardisConfig, build_tardis_index, convert_records
from repro.core.builder import TardisIndex
from repro.tsdb import TimeSeriesDataset, random_walk


class TestConvertRecords:
    def test_signature_and_payload(self):
        config = TardisConfig()
        ds = random_walk(5, length=64).z_normalized()
        records = [(int(rid), row) for rid, row in ds]
        out = convert_records(records, config)
        assert len(out) == 5
        sig, rid, ts = out[0]
        assert len(sig) == config.cardinality_bits * config.word_length // 4
        assert rid == 0
        np.testing.assert_array_equal(ts, ds.values[0])

    def test_empty(self):
        assert convert_records([], TardisConfig()) == []


class TestBuildEndToEnd:
    def test_every_record_indexed_exactly_once(self, tardis_small, rw_small):
        seen: list[int] = []
        for partition in tardis_small.partitions.values():
            seen.extend(e[1] for e in partition.all_entries())
        assert sorted(seen) == sorted(rw_small.record_ids.tolist())

    def test_partition_count_matches_global(self, tardis_small):
        assert (
            len(tardis_small.partitions)
            == tardis_small.global_index.n_partitions
        )

    def test_shuffle_respects_global_routing(self, tardis_small):
        """Every entry sits in the partition Tardis-G routes it to."""
        for pid, partition in tardis_small.partitions.items():
            for sig, _rid, _ts in partition.all_entries():
                assert tardis_small.global_index.route(sig) == pid

    def test_construction_ledger_has_all_phases(self, tardis_small):
        labels = set(tardis_small.construction_ledger.breakdown())
        expected = {
            "global/sample+convert",
            "global/node statistic",
            "global/build index tree",
            "global/partition assignment",
            "local/read data",
            "local/convert data",
            "local/broadcast Tardis-G",
            "local/shuffle",
            "local/build index",
        }
        assert expected <= labels

    def test_indivisible_length_supported(self):
        """Fractional PAA lets any length >= word length index cleanly."""
        ds = random_walk(300, length=30, seed=3).z_normalized()
        config = TardisConfig(word_length=8, g_max_size=100, l_max_size=10)
        index = build_tardis_index(ds, config)
        index.validate()
        from repro.core import exact_match

        assert 5 in exact_match(index, ds.values[5]).record_ids

    def test_too_short_series_rejected(self):
        ds = random_walk(10, length=4)
        with pytest.raises(ValueError, match="shorter"):
            build_tardis_index(ds, TardisConfig(word_length=8))

    def test_unclustered_mode(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config, clustered=False)
        assert not index.clustered
        some = next(iter(index.partitions.values()))
        assert all(e[2] is None for e in some.all_entries())

    def test_no_bloom_mode(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config, with_bloom=False)
        for partition in index.partitions.values():
            assert partition.bloom.n_items == 0

    def test_spill_mode_charges_extra_io(self, rw_small, small_config):
        cached = build_tardis_index(rw_small, small_config)
        spilled = build_tardis_index(
            rw_small, small_config, persist_in_memory=False
        )
        cached_stages = cached.construction_ledger.breakdown()
        spilled_stages = spilled.construction_ledger.breakdown()
        assert "local/spill write" not in cached_stages
        # Spilling charges real extra I/O stages (compare stages, not the
        # noisy whole-build totals).
        assert spilled_stages["local/spill write"] > 0
        assert spilled_stages["local/spill read"] > 0

    def test_deterministic_structure(self, rw_small, small_config):
        a = build_tardis_index(rw_small, small_config)
        b = build_tardis_index(rw_small, small_config)
        assert a.partition_record_counts() == b.partition_record_counts()
        assert a.global_index_nbytes() == b.global_index_nbytes()

    def test_reuses_supplied_cluster_ledger(self, rw_small, small_config):
        cluster = SimCluster(n_workers=4)
        index = build_tardis_index(rw_small, small_config, cluster=cluster)
        assert index.construction_ledger is cluster.ledger


class TestSizeReporting:
    def test_sizes_positive(self, tardis_small):
        assert tardis_small.global_index_nbytes() > 0
        assert tardis_small.local_index_nbytes() > 0
        assert tardis_small.bloom_nbytes() > 0

    def test_block_nbytes_scales_with_capacity(self, tardis_small):
        assert tardis_small.block_nbytes() == (
            tardis_small.config.g_max_size
            * (tardis_small.series_length * 8 + 16)
        )

    def test_load_partition_charges_block_granular_io(self, tardis_small):
        from repro.cluster import SimulationLedger

        ledger = SimulationLedger()
        pid = next(iter(tardis_small.partitions))
        tardis_small.load_partition(pid, ledger=ledger)
        assert ledger.clock_s > 0
        # At least one nominal block, even for an underfull partition.
        min_io = tardis_small.block_nbytes() / (1024 * 1024 * 180.0)
        assert ledger.clock_s >= min_io * 0.99


class TestNormalizationGuard:
    def test_unnormalized_rejected_with_hint(self):
        raw = random_walk(100, length=32, seed=1)
        shifted = TimeSeriesDataset(raw.values + 50.0)
        with pytest.raises(ValueError, match="z_normalized"):
            build_tardis_index(
                shifted, TardisConfig(g_max_size=50, l_max_size=10)
            )

    def test_normalized_accepted(self):
        raw = random_walk(100, length=32, seed=1)
        index = build_tardis_index(
            raw.z_normalized(), TardisConfig(g_max_size=50, l_max_size=10)
        )
        assert index.n_records == 100

    def test_baseline_guard_too(self):
        from repro.baseline import DpisaxConfig, build_dpisax_index

        shifted = TimeSeriesDataset(
            random_walk(100, length=32, seed=1).values + 50.0
        )
        with pytest.raises(ValueError, match="z_normalized"):
            build_dpisax_index(
                shifted, DpisaxConfig(g_max_size=50, l_max_size=10)
            )
