"""Tests for exact kNN (best-first) and range queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import brute_force_knn
from repro.core.exact_search import knn_exact, range_query
from repro.tsdb.series import z_normalize


def _query(seed: int, length: int = 64) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return z_normalize(np.cumsum(rng.standard_normal(length)))


class TestKnnExact:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_equals_brute_force(self, tardis_small, rw_small, seed):
        """The central exactness property, over random queries."""
        q = _query(seed)
        exact = knn_exact(tardis_small, q, 10)
        truth = brute_force_knn(rw_small, q, 10)
        assert exact.record_ids == [n.record_id for n in truth]
        assert exact.distances == pytest.approx([n.distance for n in truth])

    def test_self_query(self, tardis_small, rw_small):
        result = knn_exact(tardis_small, rw_small.values[5], 1)
        assert result.record_ids == [5]
        assert result.distances[0] == 0.0

    def test_prunes_partitions(self, tardis_small):
        """For typical queries the bound skips at least one partition."""
        pruned_any = any(
            knn_exact(tardis_small, _query(s), 5).partitions_loaded
            < len(tardis_small.partitions)
            for s in range(5)
        )
        assert pruned_any

    def test_k_larger_than_dataset(self, tardis_small, rw_small):
        result = knn_exact(tardis_small, rw_small.values[0], len(rw_small) + 5)
        assert len(result.neighbors) == len(rw_small)

    def test_invalid_inputs(self, tardis_small, rw_small, small_config):
        with pytest.raises(ValueError):
            knn_exact(tardis_small, rw_small.values[0], 0)
        from repro.core import build_tardis_index

        unclustered = build_tardis_index(rw_small, small_config, clustered=False)
        with pytest.raises(RuntimeError, match="clustered"):
            knn_exact(unclustered, rw_small.values[0], 3)

    def test_sorted_output(self, tardis_small):
        result = knn_exact(tardis_small, _query(3), 20)
        assert result.distances == sorted(result.distances)

    def test_beats_approximate_strategies(self, tardis_small, rw_small,
                                          heldout_queries):
        """Exact kNN's k-th distance lower-bounds every approximate one."""
        from repro.core import knn_multi_partitions_access

        for q in heldout_queries[:5]:
            exact = knn_exact(tardis_small, q, 10)
            approx = knn_multi_partitions_access(tardis_small, q, 10)
            assert exact.distances[-1] <= approx.distances[-1] + 1e-9


class TestRangeQuery:
    @given(seed=st.integers(0, 10_000), radius=st.floats(0.5, 8.0))
    @settings(max_examples=20, deadline=None)
    def test_equals_linear_scan(self, tardis_small, rw_small, seed, radius):
        q = _query(seed)
        result = range_query(tardis_small, q, radius)
        expected = {
            int(rid)
            for rid, row in rw_small
            if float(np.linalg.norm(q - row)) <= radius
        }
        assert {n.record_id for n in result.neighbors} == expected

    def test_zero_radius_finds_exact_copy(self, tardis_small, rw_small):
        result = range_query(tardis_small, rw_small.values[9], 0.0)
        assert result.record_ids == [9]

    def test_results_sorted(self, tardis_small):
        result = range_query(tardis_small, _query(1), 7.0)
        assert result.distances == sorted(result.distances)

    def test_all_within_radius(self, tardis_small, rw_small):
        q = _query(2)
        result = range_query(tardis_small, q, 6.5)
        for neighbor in result.neighbors:
            true = float(np.linalg.norm(q - rw_small.series(neighbor.record_id)))
            assert true <= 6.5 + 1e-9
            assert neighbor.distance == pytest.approx(true)

    def test_negative_radius_rejected(self, tardis_small):
        with pytest.raises(ValueError):
            range_query(tardis_small, _query(0), -1.0)

    def test_small_radius_prunes(self, tardis_small):
        result = range_query(tardis_small, _query(4), 0.5)
        assert result.partitions_loaded < len(tardis_small.partitions)
