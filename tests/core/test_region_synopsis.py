"""Tests for the per-partition region synopsis and the fallback-routing
soundness bug it fixes.

Found by hypothesis: a record whose signature was unseen during Tardis-G
sampling gets fallback-routed into a partition whose sampled Tardis-G leaf
regions do not cover it.  Bounding that partition by those leaf regions
can then exceed the record's true distance, and exact range/kNN search
would prune a true answer.  The synopsis (coarse prefixes of the records
*actually stored*) restores soundness.
"""

import numpy as np
import pytest

from repro.core import TardisConfig, build_tardis_index, brute_force_knn
from repro.core.exact_search import _partition_bounds, knn_exact, range_query
from repro.core.local_index import REGION_PREFIX_BITS
from repro.core.queries import query_signature
from repro.tsdb import random_walk
from repro.tsdb.series import z_normalize


class TestRegionSynopsis:
    def test_every_record_covered(self, tardis_small):
        """Each stored signature's coarse prefix is in its partition's
        synopsis — the invariant the bound's soundness rests on."""
        for partition in tardis_small.partitions.values():
            bits = min(REGION_PREFIX_BITS, partition.tree.max_bits)
            per_plane = partition.tree.per_plane
            for sig, _rid, _ts in partition.all_entries():
                assert sig[: bits * per_plane] in partition.region_prefixes

    def test_synopsis_small(self, tardis_small):
        """The synopsis is metadata-sized, not data-sized."""
        for partition in tardis_small.partitions.values():
            assert len(partition.region_prefixes) <= partition.n_records
            assert len(partition.region_prefixes) < 300

    def test_region_bound_lower_bounds_all_records(self, tardis_small,
                                                   rw_small):
        rng = np.random.default_rng(0)
        for _ in range(5):
            q = z_normalize(np.cumsum(rng.standard_normal(64)))
            _sig, paa = query_signature(tardis_small, q)
            bounds = _partition_bounds(tardis_small, paa)
            for pid, partition in tardis_small.partitions.items():
                for _s, rid, _ts in partition.all_entries()[:20]:
                    true = float(np.linalg.norm(q - rw_small.series(rid)))
                    assert bounds[pid] <= true + 1e-7

    def test_empty_partition_bound_infinite(self, small_config):
        from repro.core.local_index import build_local_partition

        partition = build_local_partition(0, [], small_config)
        assert partition.region_bound(np.zeros(8), 64) == np.inf


class TestFallbackRoutingRegression:
    """The exact hypothesis counterexample, pinned."""

    @pytest.fixture(scope="class")
    def world(self):
        dataset = random_walk(3000, length=64, seed=42).z_normalized()
        config = TardisConfig(g_max_size=300, l_max_size=30, pth=4)
        return dataset, build_tardis_index(dataset, config)

    def test_range_query_complete_at_boundary(self, world):
        dataset, index = world
        rng = np.random.default_rng(0)
        q = z_normalize(np.cumsum(rng.standard_normal(64)))
        result = range_query(index, q, 8.0)
        expected = {
            int(rid)
            for rid, row in dataset
            if float(np.linalg.norm(q - row)) <= 8.0
        }
        assert {n.record_id for n in result.neighbors} == expected
        # Record 1420 is the fallback-routed series the old Tardis-G-leaf
        # bound wrongly pruned.
        assert 1420 in expected

    def test_exact_knn_still_equals_brute_force(self, world):
        dataset, index = world
        rng = np.random.default_rng(0)
        q = z_normalize(np.cumsum(rng.standard_normal(64)))
        exact = knn_exact(index, q, 25)
        truth = brute_force_knn(dataset, q, 25)
        assert exact.record_ids == [n.record_id for n in truth]
