"""Tests for signature-only (un-clustered) kNN answering."""

import numpy as np
import pytest

from repro.baseline import build_dpisax_index
from repro.core import brute_force_knn, build_tardis_index
from repro.core.queries import knn_target_node_access
from repro.core.unclustered import (
    knn_signature_only_baseline,
    knn_signature_only_tardis,
)
from repro.metrics import recall


class TestSignatureOnlyTardis:
    def test_works_without_raw_series(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config, clustered=False)
        result = knn_signature_only_tardis(index, rw_small.values[0], 10)
        assert len(result.neighbors) == 10

    def test_distances_are_lower_bounds(self, tardis_small, rw_small,
                                        heldout_queries):
        q = heldout_queries[0]
        result = knn_signature_only_tardis(tardis_small, q, 10)
        for neighbor in result.neighbors:
            true = float(np.linalg.norm(q - rw_small.series(neighbor.record_id)))
            assert neighbor.distance <= true + 1e-7

    def test_sorted_by_bound(self, tardis_small, heldout_queries):
        result = knn_signature_only_tardis(tardis_small, heldout_queries[1], 10)
        dists = result.distances
        assert dists == sorted(dists)

    def test_less_accurate_than_clustered(self, tardis_small, rw_small,
                                          heldout_queries):
        """The paper's §II-D degradation: signature-only answering loses
        accuracy vs the clustered refine step (on average)."""
        k = 10
        sig_recalls, clu_recalls = [], []
        for q in heldout_queries[:15]:
            truth = [n.record_id for n in brute_force_knn(rw_small, q, k)]
            sig = knn_signature_only_tardis(tardis_small, q, k)
            clu = knn_target_node_access(tardis_small, q, k)
            sig_recalls.append(recall(sig.record_ids, truth))
            clu_recalls.append(recall(clu.record_ids, truth))
        assert float(np.mean(sig_recalls)) <= float(np.mean(clu_recalls))


class TestSignatureOnlyBaseline:
    def test_works_unclustered(self, rw_small, small_baseline_config):
        index = build_dpisax_index(
            rw_small, small_baseline_config, clustered=False
        )
        result = knn_signature_only_baseline(index, rw_small.values[3], 10)
        assert len(result.record_ids) == 10
        assert result.distances == sorted(result.distances)

    def test_distances_are_lower_bounds(self, dpisax_small, rw_small,
                                        heldout_queries):
        q = heldout_queries[2]
        result = knn_signature_only_baseline(dpisax_small, q, 10)
        for rid, bound in zip(result.record_ids, result.distances):
            true = float(np.linalg.norm(q - rw_small.series(rid)))
            assert bound <= true + 1e-7


class TestMaintenance:
    @pytest.fixture()
    def mutable_index(self, rw_small, small_config):
        return build_tardis_index(rw_small, small_config)

    def test_insert_then_exact_match(self, mutable_index, heldout_queries):
        from repro.core import exact_match

        new_series = heldout_queries[5]
        rid = mutable_index.insert_series(new_series)
        result = exact_match(mutable_index, new_series)
        assert rid in result.record_ids
        assert mutable_index.n_records == 3001

    def test_insert_routing_consistent(self, mutable_index, heldout_queries):
        rid = mutable_index.insert_series(heldout_queries[6])
        from repro.core.queries import query_signature

        sig, _ = query_signature(mutable_index, heldout_queries[6])
        pid = mutable_index.global_index.route(sig)
        entries = mutable_index.partitions[pid].all_entries()
        assert any(e[1] == rid for e in entries)

    def test_insert_assigns_fresh_ids(self, mutable_index, heldout_queries):
        a = mutable_index.insert_series(heldout_queries[7])
        b = mutable_index.insert_series(heldout_queries[8])
        assert b == a + 1
        assert a >= 3000  # beyond the original record ids

    def test_insert_wrong_length_rejected(self, mutable_index):
        with pytest.raises(ValueError, match="length"):
            mutable_index.insert_series(np.zeros(7))

    def test_insert_then_knn_finds_it(self, mutable_index, heldout_queries):
        from repro.core import knn_target_node_access

        q = heldout_queries[9]
        rid = mutable_index.insert_series(q)
        result = knn_target_node_access(mutable_index, q, 1)
        assert result.neighbors[0].record_id == rid
        assert result.neighbors[0].distance == 0.0

    def test_delete_removes_from_results(self, mutable_index, rw_small):
        from repro.core import exact_match

        target = rw_small.values[10]
        assert mutable_index.delete_series(target, 10)
        assert 10 not in exact_match(mutable_index, target).record_ids
        assert mutable_index.n_records == 2999

    def test_delete_missing_returns_false(self, mutable_index,
                                          heldout_queries):
        assert not mutable_index.delete_series(heldout_queries[3], 424242)

    def test_delete_keeps_counts_consistent(self, mutable_index, rw_small):
        mutable_index.delete_series(rw_small.values[20], 20)
        for partition in mutable_index.partitions.values():
            total = sum(len(l.entries) for l in partition.tree.leaves())
            assert partition.tree.root.count == total

    def test_delete_unclustered_rejected(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config, clustered=False)
        with pytest.raises(RuntimeError, match="clustered"):
            index.delete_series(rw_small.values[0], 0)
