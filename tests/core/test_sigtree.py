"""Tests for the sigTree: insertion, splitting, statistics mode, and
structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isaxt import encode_symbols
from repro.core.sigtree import SigTree


def sig(symbols, bits=4, w=4):
    return encode_symbols(np.array(symbols, dtype=np.uint32), bits)


def make_tree(threshold=2, max_bits=4, w=4) -> SigTree:
    return SigTree(word_length=w, max_bits=max_bits, split_threshold=threshold)


class TestInsertEntry:
    def test_single_insert_creates_first_layer_leaf(self):
        tree = make_tree()
        leaf = tree.insert_entry((sig([1, 2, 3, 4]), 0))
        assert leaf.layer == 1
        assert leaf.is_leaf
        assert tree.root.count == 1

    def test_counts_along_path(self):
        tree = make_tree(threshold=10)
        for i in range(5):
            tree.insert_entry((sig([1, 2, 3, 4]), i))
        assert tree.root.count == 5
        (child,) = tree.root.children.values()
        assert child.count == 5

    def test_split_on_overflow(self):
        tree = make_tree(threshold=2)
        # Same 1-bit prefix, differing at 2-bit layer -> split distributes.
        entries = [sig([0b0000, 0b0100, 0b1000, 0b1100]),
                   sig([0b0001, 0b0101, 0b1001, 0b1101]),
                   sig([0b0111, 0b0011, 0b1111, 0b1011])]
        for i, s in enumerate(entries):
            tree.insert_entry((s, i))
        first_layer = list(tree.root.children.values())
        assert len(first_layer) == 1  # all share the 1-bit prefix
        assert not first_layer[0].is_leaf  # it split
        assert first_layer[0].count == 3
        assert sum(len(l.entries) for l in tree.leaves()) == 3

    def test_cascading_split_with_identical_prefixes(self):
        """Entries identical at every layer cascade to max depth and stay."""
        tree = make_tree(threshold=2, max_bits=4)
        s = sig([5, 6, 7, 8])
        for i in range(5):
            tree.insert_entry((s, i))
        (leaf,) = [l for l in tree.leaves() if l.entries]
        assert leaf.layer == 4  # split as deep as possible
        assert len(leaf.entries) == 5  # overflow allowed at max depth

    def test_rejects_wrong_cardinality(self):
        tree = make_tree()
        with pytest.raises(ValueError, match="signature"):
            tree.insert_entry((sig([1, 1, 1, 1], bits=2), 0))

    def test_total_preserved_under_random_load(self):
        rng = np.random.default_rng(0)
        tree = make_tree(threshold=5)
        n = 300
        for i in range(n):
            symbols = rng.integers(0, 16, size=4)
            tree.insert_entry((sig(symbols), i))
        assert tree.root.count == n
        assert sum(len(l.entries) for l in tree.leaves()) == n
        tree.validate()

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=120))
    @settings(max_examples=40)
    def test_every_inserted_entry_findable(self, seeds):
        rng = np.random.default_rng(7)
        tree = make_tree(threshold=3)
        signatures = []
        for i, _ in enumerate(seeds):
            symbols = rng.integers(0, 16, size=4)
            s = sig(symbols)
            signatures.append(s)
            tree.insert_entry((s, i))
        for i, s in enumerate(signatures):
            leaf = tree.descend(s)
            assert leaf.is_leaf
            assert any(entry[1] == i for entry in leaf.entries)
        tree.validate()


class TestStatNodes:
    def test_insert_stat_layers(self):
        tree = make_tree(threshold=100)
        tree.set_root_count(50)
        s2 = sig([3, 7, 11, 15])
        layer1 = s2[:1]  # w=4 -> one char per plane
        tree.insert_stat_node(layer1, 50)
        tree.insert_stat_node(s2[:2], 30)
        assert tree.root.count == 50
        node = tree.descend(s2 + "00")  # descend wants full-length prefix ok
        assert node.layer == 2
        assert node.count == 30
        tree.validate()

    def test_missing_ancestor_created(self):
        tree = make_tree(threshold=100)
        deep = sig([1, 2, 3, 4])[:2]
        tree.insert_stat_node(deep, 10)
        assert tree.height() == 2

    def test_root_layer_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.insert_stat_node("", 1)

    def test_too_deep_rejected(self):
        tree = make_tree(max_bits=2)
        with pytest.raises(ValueError):
            tree.insert_stat_node("abc", 1)


class TestTraversalAndReporting:
    def test_descend_stops_at_missing_child(self):
        tree = make_tree(threshold=100)
        tree.insert_stat_node(sig([1, 2, 3, 4])[:1], 5)
        missing = sig([15, 14, 13, 12])
        node = tree.descend(missing)
        assert node is tree.root or not node.signature  # stays at root

    def test_siblings(self):
        tree = make_tree(threshold=100)
        a = tree.insert_stat_node(sig([0, 0, 0, 0])[:1], 1)
        b = tree.insert_stat_node(sig([15, 15, 15, 15])[:1], 1)
        assert a.siblings() == [b]
        assert b.siblings() == [a]
        assert tree.root.siblings() == []

    def test_depth_histogram_and_height(self):
        tree = make_tree(threshold=1)
        rng = np.random.default_rng(2)
        for i in range(40):
            tree.insert_entry((sig(rng.integers(0, 16, size=4)), i))
        histogram = tree.depth_histogram()
        assert sum(histogram.values()) == len(tree.leaves())
        assert max(histogram) == tree.height()
        assert min(histogram) >= 1

    def test_n_nodes_counts_root(self):
        tree = make_tree()
        assert tree.n_nodes() == 1
        tree.insert_entry((sig([1, 2, 3, 4]), 0))
        assert tree.n_nodes() == 2

    def test_estimated_nbytes_grows_with_entries_flag(self):
        tree = make_tree(threshold=100)
        for i in range(10):
            tree.insert_entry((sig([1, 2, 3, 4]), i))
        bare = tree.estimated_nbytes(include_entries=False)
        full = tree.estimated_nbytes(include_entries=True)
        assert full > bare

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SigTree(word_length=8, max_bits=0, split_threshold=1)
        with pytest.raises(ValueError):
            SigTree(word_length=8, max_bits=4, split_threshold=0)
        with pytest.raises(ValueError):
            SigTree(word_length=5, max_bits=4, split_threshold=1)


class TestFanout:
    def test_fanout_bounded_by_2_pow_w(self):
        """Stress one node with every possible child signature."""
        tree = make_tree(threshold=1, w=4)
        rng = np.random.default_rng(3)
        for i in range(500):
            tree.insert_entry((sig(rng.integers(0, 16, size=4)), i))
        for node in tree.iter_nodes():
            assert len(node.children) <= 16
        tree.validate()
