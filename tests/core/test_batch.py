"""Tests for batch query processing."""

import numpy as np
import pytest

from repro.core import exact_match, knn_target_node_access
from repro.core.batch import batch_exact_match, batch_knn_target_node
from repro.experiments.workloads import exact_match_workload
from repro.metrics import mean


class TestBatchExactMatch:
    @pytest.fixture(scope="class")
    def workload(self, rw_small):
        return exact_match_workload(rw_small, 40, seed=77)

    def test_answers_match_interactive_path(self, tardis_small, workload):
        batch = batch_exact_match(
            tardis_small, np.array([q.values for q in workload])
        )
        for query, result in zip(workload, batch.results):
            single = exact_match(tardis_small, query.values)
            assert sorted(result.record_ids) == sorted(single.record_ids)

    def test_loads_each_partition_at_most_once(self, tardis_small, workload):
        batch = batch_exact_match(
            tardis_small, np.array([q.values for q in workload])
        )
        assert batch.partitions_loaded <= len(tardis_small.partitions)

    def test_cheaper_than_query_at_a_time(self, tardis_small, workload):
        queries = np.array([q.values for q in workload])
        batch = batch_exact_match(tardis_small, queries, use_bloom=False)
        singles = sum(
            exact_match(tardis_small, q, use_bloom=False).simulated_seconds
            for q in queries
        )
        assert batch.simulated_seconds < singles

    def test_bloom_skips_unneeded_partitions(self, tardis_small, rw_small):
        workload = exact_match_workload(rw_small, 30, absent_fraction=1.0,
                                        seed=5)
        queries = np.array([q.values for q in workload])
        with_bf = batch_exact_match(tardis_small, queries, use_bloom=True)
        without = batch_exact_match(tardis_small, queries, use_bloom=False)
        assert with_bf.partitions_loaded < without.partitions_loaded
        rejected = sum(r.bloom_rejected for r in with_bf.results)
        assert rejected > 20

    def test_correctness_flags(self, tardis_small, workload):
        batch = batch_exact_match(
            tardis_small, np.array([q.values for q in workload])
        )
        for query, result in zip(workload, batch.results):
            if query.present:
                assert query.record_id in result.record_ids
            else:
                assert result.record_ids == []


class TestBatchKnn:
    def test_answers_match_interactive_path(self, tardis_small,
                                            heldout_queries):
        batch = batch_knn_target_node(tardis_small, heldout_queries[:15], 10)
        for q, result in zip(heldout_queries[:15], batch.results):
            single = knn_target_node_access(tardis_small, q, 10)
            assert result.record_ids == single.record_ids

    def test_partition_amortization(self, tardis_small, heldout_queries):
        batch = batch_knn_target_node(tardis_small, heldout_queries, 10)
        assert batch.partitions_loaded <= len(tardis_small.partitions)
        singles = mean(
            [knn_target_node_access(tardis_small, q, 10).simulated_seconds
             for q in heldout_queries]
        ) * len(heldout_queries)
        assert batch.simulated_seconds < singles

    def test_invalid_inputs(self, tardis_small, rw_small, small_config,
                            heldout_queries):
        with pytest.raises(ValueError):
            batch_knn_target_node(tardis_small, heldout_queries[:2], 0)
        from repro.core import build_tardis_index

        unclustered = build_tardis_index(rw_small, small_config,
                                         clustered=False)
        with pytest.raises(RuntimeError, match="clustered"):
            batch_knn_target_node(unclustered, heldout_queries[:2], 5)

    def test_empty_batch(self, tardis_small):
        report = batch_knn_target_node(tardis_small, np.zeros((0, 64)), 5)
        assert report.results == []
        assert report.partitions_loaded == 0
