"""Tests for the LRU partition cache."""

import numpy as np
import pytest

from repro.core import build_tardis_index, exact_match, knn_target_node_access
from repro.core.cache import PartitionCache


class TestPartitionCacheUnit:
    def test_miss_then_hit(self):
        cache = PartitionCache(2)
        assert not cache.admit(1)
        assert cache.admit(1)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = PartitionCache(2)
        cache.admit(1)
        cache.admit(2)
        cache.admit(1)        # refresh 1 -> 2 is now LRU
        cache.admit(3)        # evicts 2
        assert cache.resident_ids == [1, 3]
        assert not cache.admit(2)  # 2 was evicted: miss

    def test_invalidate_and_clear(self):
        cache = PartitionCache(4)
        cache.admit(7)
        cache.invalidate(7)
        assert not cache.admit(7)  # miss again after invalidation
        cache.clear()
        assert cache.resident_ids == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PartitionCache(0)

    def test_empty_hit_rate(self):
        assert PartitionCache(1).hit_rate == 0.0

    def test_evictions_counted(self):
        cache = PartitionCache(2)
        for pid in (1, 2, 3, 4):
            cache.admit(pid)
        assert cache.evictions == 2
        cache.invalidate(3)  # explicit invalidation is not an eviction
        assert cache.evictions == 2

    def test_stats_snapshot(self):
        cache = PartitionCache(2)
        cache.admit(1)
        cache.admit(1)
        cache.admit(2)
        cache.admit(3)
        stats = cache.stats()
        assert stats == {
            "capacity": 2,
            "resident": 2,
            "hits": 1,
            "misses": 3,
            "evictions": 1,
            "hit_rate": 0.25,
        }


class TestCacheOnIndex:
    @pytest.fixture()
    def cached_index(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config)
        cache = index.enable_cache(4)
        return index, cache

    def test_repeat_query_is_free(self, cached_index, rw_small):
        index, cache = cached_index
        q = rw_small.values[11]
        first = knn_target_node_access(index, q, 5)
        second = knn_target_node_access(index, q, 5)
        assert second.record_ids == first.record_ids
        assert second.simulated_seconds < first.simulated_seconds / 2
        assert cache.hits >= 1

    def test_cached_stage_label(self, cached_index, rw_small):
        index, _cache = cached_index
        q = rw_small.values[12]
        exact_match(index, q)
        result = exact_match(index, q)
        assert "query/load partition (cached)" in result.ledger.breakdown()

    def test_insert_invalidates(self, cached_index, rw_small,
                                heldout_queries):
        index, cache = cached_index
        new = heldout_queries[0]
        # Warm the cache on the partition the new series will land in.
        knn_target_node_access(index, new, 3)
        index.insert_series(new)
        result = exact_match(index, new)
        # The mutated partition had to be reloaded (not served stale).
        assert "query/load partition" in result.ledger.breakdown()
        assert result.found

    def test_disable_cache(self, cached_index, rw_small):
        index, _cache = cached_index
        q = rw_small.values[13]
        exact_match(index, q)
        index.disable_cache()
        result = exact_match(index, q)
        assert "query/load partition (cached)" not in result.ledger.breakdown()

    def test_index_cache_stats(self, cached_index, rw_small):
        index, _cache = cached_index
        q = rw_small.values[14]
        exact_match(index, q)
        exact_match(index, q)
        stats = index.cache_stats()
        assert stats["capacity"] == 4
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_cache_stats_none_without_cache(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config)
        assert index.cache_stats() is None

    def test_results_identical_with_and_without_cache(
        self, rw_small, small_config, heldout_queries
    ):
        from repro.core import build_tardis_index

        cold = build_tardis_index(rw_small, small_config)
        warm = build_tardis_index(rw_small, small_config)
        warm.enable_cache(8)
        for q in heldout_queries[:8]:
            a = knn_target_node_access(cold, q, 10)
            b = knn_target_node_access(warm, q, 10)
            assert a.record_ids == b.record_ids
