"""Tests for TARDIS query processing: exact match and the three kNN
strategies."""

import numpy as np
import pytest

from repro.core import (
    brute_force_knn,
    exact_match,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.core.queries import query_signature
from repro.metrics import recall
from repro.tsdb.series import z_normalize


class TestExactMatch:
    def test_present_series_found(self, tardis_small, rw_small):
        for row in (0, 100, 2999):
            result = exact_match(tardis_small, rw_small.values[row])
            assert row in result.record_ids
            assert result.partitions_loaded == 1
            assert not result.bloom_rejected

    def test_absent_series_rejected_by_bloom_mostly(self, tardis_small, rw_small):
        rng = np.random.default_rng(11)
        rejected = 0
        for i in range(30):
            ghost = z_normalize(rw_small.values[i] + rng.normal(0, 0.1, 64))
            result = exact_match(tardis_small, ghost)
            assert result.record_ids == []
            rejected += int(result.bloom_rejected)
        # The Bloom filter prevents most absent-series partition loads.
        assert rejected >= 20

    def test_bloom_rejection_skips_partition_load(self, tardis_small, rw_small):
        rng = np.random.default_rng(12)
        for i in range(30):
            ghost = z_normalize(rw_small.values[i] + rng.normal(0, 0.1, 64))
            result = exact_match(tardis_small, ghost)
            if result.bloom_rejected:
                assert result.partitions_loaded == 0
                break
        else:
            pytest.fail("no bloom rejection observed in 30 absent queries")

    def test_nobf_mode_always_loads(self, tardis_small, rw_small):
        rng = np.random.default_rng(13)
        ghost = z_normalize(rw_small.values[0] + rng.normal(0, 0.1, 64))
        result = exact_match(tardis_small, ghost, use_bloom=False)
        assert result.record_ids == []
        assert result.partitions_loaded == 1
        assert not result.bloom_rejected

    def test_bloom_faster_on_absent(self, tardis_small, rw_small):
        rng = np.random.default_rng(14)
        ghost = z_normalize(rw_small.values[5] + rng.normal(0, 0.1, 64))
        with_bf = exact_match(tardis_small, ghost, use_bloom=True)
        without = exact_match(tardis_small, ghost, use_bloom=False)
        if with_bf.bloom_rejected:
            assert with_bf.simulated_seconds < without.simulated_seconds

    def test_found_flag(self, tardis_small, rw_small):
        assert exact_match(tardis_small, rw_small.values[1]).found


class TestKnnCommonContract:
    @pytest.mark.parametrize(
        "fn",
        [knn_target_node_access, knn_one_partition_access,
         knn_multi_partitions_access],
        ids=["tna", "opa", "mpa"],
    )
    def test_returns_k_sorted_unique(self, fn, tardis_small, heldout_queries):
        k = 10
        result = fn(tardis_small, heldout_queries[0], k)
        assert len(result.neighbors) == k
        dists = result.distances
        assert dists == sorted(dists)
        assert len(set(result.record_ids)) == k

    @pytest.mark.parametrize(
        "fn",
        [knn_target_node_access, knn_one_partition_access,
         knn_multi_partitions_access],
        ids=["tna", "opa", "mpa"],
    )
    def test_distances_are_true_euclidean(self, fn, tardis_small, rw_small,
                                          heldout_queries):
        result = fn(tardis_small, heldout_queries[1], 5)
        for neighbor in result.neighbors:
            true = np.linalg.norm(
                heldout_queries[1] - rw_small.series(neighbor.record_id)
            )
            assert neighbor.distance == pytest.approx(float(true))

    def test_unclustered_index_rejected(self, rw_small, small_config):
        from repro.core import build_tardis_index

        index = build_tardis_index(rw_small, small_config, clustered=False)
        with pytest.raises(RuntimeError, match="clustered"):
            knn_target_node_access(index, rw_small.values[0], 5)


class TestKnnQuality:
    def test_query_from_dataset_finds_itself(self, tardis_small, rw_small):
        result = knn_target_node_access(tardis_small, rw_small.values[7], 1)
        assert result.neighbors[0].record_id == 7
        assert result.neighbors[0].distance == 0.0

    def test_candidate_scope_ordering(self, tardis_small, heldout_queries):
        """OPA examines at least TNA's candidates; MPA at least OPA's."""
        k = 10
        for q in heldout_queries[:10]:
            tna = knn_target_node_access(tardis_small, q, k)
            opa = knn_one_partition_access(tardis_small, q, k)
            mpa = knn_multi_partitions_access(tardis_small, q, k)
            assert opa.candidates_examined >= tna.candidates_examined
            assert mpa.candidates_examined >= opa.candidates_examined
            assert mpa.partitions_loaded >= 1

    def test_average_recall_ordering(self, tardis_small, rw_small,
                                     heldout_queries):
        """The paper's headline: recall(TNA) <= recall(OPA) <= recall(MPA)
        on average (small per-query violations are possible)."""
        k = 10
        recalls = {"tna": [], "opa": [], "mpa": []}
        for q in heldout_queries[:15]:
            truth = [n.record_id for n in brute_force_knn(rw_small, q, k)]
            recalls["tna"].append(
                recall(knn_target_node_access(tardis_small, q, k).record_ids, truth)
            )
            recalls["opa"].append(
                recall(knn_one_partition_access(tardis_small, q, k).record_ids, truth)
            )
            recalls["mpa"].append(
                recall(knn_multi_partitions_access(tardis_small, q, k).record_ids, truth)
            )
        means = {m: float(np.mean(v)) for m, v in recalls.items()}
        assert means["tna"] <= means["opa"] + 0.05
        assert means["opa"] <= means["mpa"] + 0.05
        assert means["mpa"] > 0.2  # sanity: MPA is genuinely useful

    def test_opa_contains_tna_answers_or_better(self, tardis_small,
                                                heldout_queries):
        """OPA's k-th distance can never exceed TNA's (superset scope)."""
        k = 10
        for q in heldout_queries[:10]:
            tna = knn_target_node_access(tardis_small, q, k)
            opa = knn_one_partition_access(tardis_small, q, k)
            assert opa.distances[-1] <= tna.distances[-1] + 1e-9


class TestMultiPartitionsSpecifics:
    def test_pth_caps_partition_loads(self, tardis_small, heldout_queries):
        result = knn_multi_partitions_access(
            tardis_small, heldout_queries[2], 10, pth=2
        )
        assert result.partitions_loaded <= 2

    def test_default_pth_from_config(self, tardis_small, heldout_queries):
        result = knn_multi_partitions_access(tardis_small, heldout_queries[3], 10)
        assert result.partitions_loaded <= tardis_small.config.pth

    def test_seed_determinism(self, tardis_small, heldout_queries):
        a = knn_multi_partitions_access(tardis_small, heldout_queries[4], 10, seed=3)
        b = knn_multi_partitions_access(tardis_small, heldout_queries[4], 10, seed=3)
        assert a.record_ids == b.record_ids

    def test_mpa_at_least_as_good_as_opa_kth(self, tardis_small,
                                             heldout_queries):
        for q in heldout_queries[:8]:
            opa = knn_one_partition_access(tardis_small, q, 10)
            mpa = knn_multi_partitions_access(tardis_small, q, 10)
            assert mpa.distances[-1] <= opa.distances[-1] + 1e-9


class TestQuerySignature:
    def test_matches_dataset_conversion(self, tardis_small, rw_small):
        sig, paa = query_signature(tardis_small, rw_small.values[0])
        partition = tardis_small.partitions[
            tardis_small.global_index.route(sig)
        ]
        assert any(e[0] == sig and e[1] == 0 for e in partition.all_entries())
        assert paa.shape == (tardis_small.config.word_length,)
