"""Tests for iSAX-T signatures, including the paper's worked example and
the Eq. 2 dropRight-equals-bit-shift property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isaxt import (
    batch_signatures,
    child_signatures,
    chars_per_plane,
    decode_signature,
    drop_chars,
    encode_symbols,
    reduce_signature,
    signature_bits,
    signature_of_paa,
    signature_of_series,
    validate_word_length,
)
from repro.tsdb.sax import reduce_symbol, sax_symbols

words = st.integers(min_value=1, max_value=3).map(lambda k: 4 * k)  # w in {4,8,12}


def random_word(w: int, bits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << bits, size=w, dtype=np.uint32)


class TestPaperExample:
    def test_figure4_ce25(self):
        """SAX(T,4,16) = [1100, 1101, 0110, 0001] -> 'ce25' (Fig. 4a)."""
        symbols = np.array([0b1100, 0b1101, 0b0110, 0b0001])
        assert encode_symbols(symbols, 4) == "ce25"

    def test_figure4_reductions(self):
        """Fig. 4b: each cardinality drop removes w/4 = 1 character."""
        symbols = np.array([0b1100, 0b1101, 0b0110, 0b0001])
        full = encode_symbols(symbols, 4)
        assert reduce_signature(full, 3, 4) == "ce2"
        assert reduce_signature(full, 2, 4) == "ce"
        assert reduce_signature(full, 1, 4) == "c"


class TestValidation:
    def test_word_length_multiple_of_four(self):
        for bad in (0, 3, 5, 7, -4):
            with pytest.raises(ValueError):
                validate_word_length(bad)
        validate_word_length(8)  # no raise

    def test_chars_per_plane(self):
        assert chars_per_plane(8) == 2
        assert chars_per_plane(16) == 4

    def test_batch_requires_2d(self):
        with pytest.raises(ValueError, match="batch"):
            batch_signatures(np.zeros(8, dtype=np.uint32), 2)

    def test_zero_bits_empty_signature(self):
        assert batch_signatures(np.zeros((3, 8), dtype=np.uint32), 0) == [""] * 3


class TestRoundTrip:
    @given(
        words,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=150)
    def test_encode_decode_roundtrip(self, w, bits, seed):
        symbols = random_word(w, bits, seed)
        signature = encode_symbols(symbols, bits)
        assert len(signature) == bits * w // 4
        decoded, decoded_bits = decode_signature(signature, w)
        assert decoded_bits == bits
        np.testing.assert_array_equal(decoded, symbols)

    def test_decode_rejects_misaligned(self):
        with pytest.raises(ValueError):
            decode_signature("abc", 8)  # 8 needs multiples of 2 chars


class TestEquationTwo:
    @given(
        words,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=150)
    def test_dropright_equals_symbol_bitshift(self, w, bits, seed):
        """Eq. 2: string dropRight == per-symbol LSB truncation."""
        symbols = random_word(w, bits, seed)
        full = encode_symbols(symbols, bits)
        for lower in range(0, bits + 1):
            dropped = reduce_signature(full, lower, w)
            truncated = np.array(
                [reduce_symbol(int(s), bits, lower) for s in symbols],
                dtype=np.uint32,
            )
            assert dropped == encode_symbols(truncated, lower)

    def test_reduction_is_prefix(self):
        symbols = random_word(8, 6, seed=1)
        full = encode_symbols(symbols, 6)
        for lower in range(6):
            assert full.startswith(reduce_signature(full, lower, 8))

    def test_raise_cardinality_rejected(self):
        sig = encode_symbols(random_word(8, 2, seed=2), 2)
        with pytest.raises(ValueError):
            reduce_signature(sig, 3, 8)


class TestDropChars:
    def test_basic(self):
        assert drop_chars("abcdef", 2) == "abcd"
        assert drop_chars("abcdef", 0) == "abcdef"

    def test_bounds(self):
        with pytest.raises(ValueError):
            drop_chars("ab", 3)
        with pytest.raises(ValueError):
            drop_chars("ab", -1)


class TestBatchConsistency:
    def test_batch_matches_single(self):
        rng = np.random.default_rng(5)
        batch = rng.integers(0, 64, size=(20, 8), dtype=np.uint32)
        sigs = batch_signatures(batch, 6)
        for i in range(20):
            assert sigs[i] == encode_symbols(batch[i], 6)

    def test_signature_of_series_pipeline(self):
        values = np.concatenate([np.full(16, -3.0), np.full(16, 3.0)])
        sig = signature_of_series(values, 4, 1)
        # Symbols (0,0,1,1) -> single plane 0011 -> hex '3'.
        assert sig == "3"

    def test_signature_of_paa_matches_sax(self):
        paa = np.array([-1.0, -0.2, 0.2, 1.0])
        symbols = sax_symbols(paa, 3)
        assert signature_of_paa(paa, 3) == encode_symbols(symbols, 3)


class TestHelpers:
    def test_signature_bits(self):
        assert signature_bits("", 8) == 0
        assert signature_bits("ab", 8) == 1
        assert signature_bits("abcd", 8) == 2
        with pytest.raises(ValueError):
            signature_bits("abc", 8)

    def test_child_signatures_count_and_prefix(self):
        children = child_signatures("ff", 8)
        assert len(children) == 256
        assert all(c.startswith("ff") and len(c) == 4 for c in children)
        assert len(set(children)) == 256
