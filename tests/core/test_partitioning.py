"""Tests for FFD bin packing and Tardis-G partition assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TardisConfig
from repro.core.global_index import TardisGlobalIndex, collect_layer_statistics
from repro.core.partitioning import assign_partitions, first_fit_decreasing


class TestFirstFitDecreasing:
    def test_single_bin_when_everything_fits(self):
        bins = first_fit_decreasing([("a", 3), ("b", 4), ("c", 2)], capacity=10)
        assert len(bins) == 1
        assert sorted(bins[0]) == ["a", "b", "c"]

    def test_classic_packing(self):
        items = [("a", 7), ("b", 5), ("c", 3), ("d", 3), ("e", 2)]
        bins = first_fit_decreasing(items, capacity=10)
        # FFD: [7,3] [5,3,2] -> 2 bins.
        assert len(bins) == 2
        sizes = dict(items)
        for group in bins:
            assert sum(sizes[k] for k in group) <= 10

    def test_oversized_item_gets_own_bin(self):
        bins = first_fit_decreasing([("big", 15), ("s", 2)], capacity=10)
        assert ["big"] in bins
        assert len(bins) == 2

    def test_zero_size_items_pack_together(self):
        bins = first_fit_decreasing([("a", 0), ("b", 0)], capacity=5)
        assert len(bins) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            first_fit_decreasing([("a", 1)], capacity=0)
        with pytest.raises(ValueError):
            first_fit_decreasing([("a", -1)], capacity=5)

    def test_deterministic_on_ties(self):
        items = [("b", 5), ("a", 5), ("c", 5)]
        assert first_fit_decreasing(items, 10) == first_fit_decreasing(items, 10)

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=80)
    def test_packing_invariants(self, sizes, capacity):
        items = [(f"k{i}", s) for i, s in enumerate(sizes)]
        bins = first_fit_decreasing(items, capacity)
        # 1. Every item placed exactly once.
        placed = [k for group in bins for k in group]
        assert sorted(placed) == sorted(k for k, _ in items)
        # 2. No bin over capacity unless it holds a single oversized item.
        lookup = dict(items)
        for group in bins:
            total = sum(lookup[k] for k in group)
            assert total <= capacity or len(group) == 1
        # 3. FFD guarantee: within 1.5 OPT + 1; use the weaker-but-checkable
        #    bound bins <= 2 * ceil(total/capacity) + #oversized.
        total_size = sum(sizes)
        oversized = sum(1 for s in sizes if s > capacity)
        lower_bound = -(-total_size // capacity) if total_size else 1
        assert len(bins) <= 2 * lower_bound + oversized + 1


def build_small_global(counts: dict[str, int], capacity: int) -> TardisGlobalIndex:
    config = TardisConfig(word_length=4, cardinality_bits=4, g_max_size=capacity)
    stats = collect_layer_statistics(counts, config)
    return TardisGlobalIndex.from_statistics(stats, config)


class TestAssignPartitions:
    def test_all_leaves_assigned(self):
        rng = np.random.default_rng(0)
        from repro.core.isaxt import encode_symbols

        counts = {}
        for _ in range(60):
            sig = encode_symbols(rng.integers(0, 16, size=4, dtype=np.uint32), 4)
            counts[sig] = counts.get(sig, 0) + rng.integers(1, 30)
        index = build_small_global(counts, capacity=50)
        for leaf in index.tree.leaves():
            assert leaf.partition_id is not None

    def test_id_lists_synchronized_to_ancestors(self):
        rng = np.random.default_rng(1)
        from repro.core.isaxt import encode_symbols

        counts = {
            encode_symbols(rng.integers(0, 16, size=4, dtype=np.uint32), 4): 5
            for _ in range(40)
        }
        index = build_small_global(counts, capacity=20)
        all_pids = set()
        for leaf in index.tree.leaves():
            all_pids.add(leaf.partition_id)
            node = leaf
            while node is not None:
                assert leaf.partition_id in node.partition_ids
                node = node.parent
        assert index.tree.root.partition_ids == all_pids
        assert index.n_partitions == len(all_pids)

    def test_partition_capacity_respected(self):
        rng = np.random.default_rng(2)
        from repro.core.isaxt import encode_symbols

        counts = {
            encode_symbols(rng.integers(0, 16, size=4, dtype=np.uint32), 4): int(c)
            for c in rng.integers(1, 40, size=50)
        }
        capacity = 60
        index = build_small_global(counts, capacity=capacity)
        sizes = index.partition_sizes()
        for pid, size in sizes.items():
            # Only single-leaf partitions may overflow.
            leaves_in = [
                l for l in index.tree.leaves() if l.partition_id == pid
            ]
            assert size <= capacity or len(leaves_in) == 1

    def test_siblings_packed_together(self):
        """Partitions never mix leaves from different parents."""
        rng = np.random.default_rng(3)
        from repro.core.isaxt import encode_symbols

        counts = {
            encode_symbols(rng.integers(0, 16, size=4, dtype=np.uint32), 4): int(c)
            for c in rng.integers(1, 100, size=80)
        }
        index = build_small_global(counts, capacity=100)
        parent_of_pid: dict[int, str] = {}
        for leaf in index.tree.leaves():
            parent_sig = leaf.parent.signature if leaf.parent else "<root>"
            seen = parent_of_pid.setdefault(leaf.partition_id, parent_sig)
            assert seen == parent_sig
