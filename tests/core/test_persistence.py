"""Tests for index save/load round-tripping."""

import numpy as np
import pytest

from repro.core import exact_match, knn_multi_partitions_access
from repro.core.persistence import load_index, save_index


@pytest.fixture(scope="module")
def reloaded(tardis_small, tmp_path_factory):
    path = tmp_path_factory.mktemp("index") / "tardis"
    save_index(tardis_small, path)
    return load_index(path)


class TestRoundTrip:
    def test_metadata_preserved(self, tardis_small, reloaded):
        assert reloaded.n_records == tardis_small.n_records
        assert reloaded.series_length == tardis_small.series_length
        assert reloaded.dataset_name == tardis_small.dataset_name
        assert reloaded.clustered == tardis_small.clustered
        assert reloaded.config == tardis_small.config

    def test_partitions_preserved(self, tardis_small, reloaded):
        assert set(reloaded.partitions) == set(tardis_small.partitions)
        for pid in tardis_small.partitions:
            assert (
                reloaded.partitions[pid].n_records
                == tardis_small.partitions[pid].n_records
            )

    def test_all_entries_preserved(self, tardis_small, reloaded):
        for pid, original in tardis_small.partitions.items():
            old = sorted((e[0], e[1]) for e in original.all_entries())
            new = sorted(
                (e[0], e[1]) for e in reloaded.partitions[pid].all_entries()
            )
            assert old == new

    def test_global_routing_identical(self, tardis_small, reloaded):
        for leaf in tardis_small.global_index.tree.leaves():
            # Extend the leaf signature arbitrarily to a full-cardinality
            # probe within its region.
            probe = leaf.signature + "0" * (
                (tardis_small.config.cardinality_bits - leaf.layer)
                * tardis_small.global_index.tree.per_plane
            )
            assert reloaded.global_index.route(probe) == (
                tardis_small.global_index.route(probe)
            )

    def test_exact_match_after_reload(self, reloaded, rw_small):
        for row in (0, 42, 2999):
            result = exact_match(reloaded, rw_small.values[row])
            assert row in result.record_ids

    def test_bloom_restored_bit_exactly(self, tardis_small, reloaded):
        for pid, original in tardis_small.partitions.items():
            restored = reloaded.partitions[pid]
            np.testing.assert_array_equal(
                original.bloom.bits, restored.bloom.bits
            )
            assert original.bloom.n_hashes == restored.bloom.n_hashes

    def test_knn_results_match(self, tardis_small, reloaded, heldout_queries):
        for q in heldout_queries[:5]:
            a = knn_multi_partitions_access(tardis_small, q, 10)
            b = knn_multi_partitions_access(reloaded, q, 10)
            assert a.record_ids == b.record_ids


class TestLongSignatures:
    def test_roundtrip_preserves_signatures_longer_than_64_chars(
        self, tmp_path
    ):
        """Regression: a fixed ``U64`` dtype silently truncated signatures.

        ``word_length=32, cardinality_bits=9`` produces 72-char iSAX-T
        signatures; after a save/load cycle every entry signature, region
        prefix, and exact-match answer must survive unchanged.
        """
        from repro.core import TardisConfig, build_tardis_index, exact_match
        from repro.tsdb import random_walk

        dataset = random_walk(300, length=128, seed=11).z_normalized()
        config = TardisConfig(
            word_length=32, cardinality_bits=9, g_max_size=80, l_max_size=16
        )
        index = build_tardis_index(dataset, config)
        long_sigs = [
            e[0]
            for p in index.partitions.values()
            for e in p.all_entries()
            if len(e[0]) > 64
        ]
        assert long_sigs, "config must produce >64-char signatures"

        save_index(index, tmp_path / "long")
        back = load_index(tmp_path / "long")
        for pid, original in index.partitions.items():
            old = sorted((e[0], e[1]) for e in original.all_entries())
            new = sorted((e[0], e[1]) for e in back.partitions[pid].all_entries())
            assert old == new
            assert original.region_prefixes == back.partitions[pid].region_prefixes
        for row in (0, 150, 299):
            assert row in exact_match(back, dataset.values[row]).record_ids


class TestUnclusteredAndErrors:
    def test_unclustered_roundtrip(self, rw_small, small_config, tmp_path):
        from repro.core import build_tardis_index

        index = build_tardis_index(rw_small, small_config, clustered=False)
        save_index(index, tmp_path / "uncl")
        back = load_index(tmp_path / "uncl")
        assert not back.clustered
        assert back.n_records == index.n_records
        some = next(iter(back.partitions.values()))
        assert all(e[2] is None for e in some.all_entries())

    def test_version_check(self, tardis_small, tmp_path):
        import json

        save_index(tardis_small, tmp_path / "idx")
        meta_path = tmp_path / "idx" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format version"):
            load_index(tmp_path / "idx")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope")


class TestCorruption:
    def test_corrupt_partition_file_raises(self, tardis_small, tmp_path):
        save_index(tardis_small, tmp_path / "idx")
        victim = sorted((tmp_path / "idx" / "partitions").glob("p*.npz"))[0]
        victim.write_bytes(b"not an npz archive")
        with pytest.raises(Exception):
            load_index(tmp_path / "idx")

    def test_missing_global_index_raises(self, tardis_small, tmp_path):
        save_index(tardis_small, tmp_path / "idx")
        (tmp_path / "idx" / "global_index.json").unlink()
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "idx")
