"""Tests for Tardis-L partitions: exact lookup, target node, pruned scan,
and Bloom integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TardisConfig
from repro.core.local_index import build_local_partition, node_mindist
from repro.core.isaxt import signature_of_series
from repro.tsdb.distance import euclidean
from repro.tsdb.paa import paa_transform
from repro.tsdb.series import z_normalize

CFG = TardisConfig(word_length=8, cardinality_bits=4, l_max_size=10, g_max_size=100)
LENGTH = 32


def make_records(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    values = z_normalize(np.cumsum(rng.standard_normal((n, LENGTH)), axis=1))
    return [
        (signature_of_series(values[i], CFG.word_length, CFG.cardinality_bits),
         i, values[i])
        for i in range(n)
    ], values


class TestBuild:
    def test_all_records_in_tree(self):
        records, _ = make_records(80)
        partition = build_local_partition(0, records, CFG)
        assert partition.n_records == 80
        assert len(partition.all_entries()) == 80
        partition.tree.validate()

    def test_unclustered_drops_series(self):
        records, _ = make_records(10)
        partition = build_local_partition(0, records, CFG, clustered=False)
        assert all(entry[2] is None for entry in partition.all_entries())

    def test_empty_partition(self):
        partition = build_local_partition(0, [], CFG)
        assert partition.n_records == 0
        assert partition.all_entries() == []

    def test_index_nbytes_positive(self):
        records, _ = make_records(30)
        partition = build_local_partition(0, records, CFG)
        assert partition.index_nbytes() > 0


class TestBloomIntegration:
    def test_every_signature_in_filter(self):
        records, _ = make_records(60)
        partition = build_local_partition(0, records, CFG)
        for sig, _rid, _ts in records:
            assert partition.might_contain(sig)

    def test_no_bloom_mode_empty_filter(self):
        records, _ = make_records(20)
        partition = build_local_partition(0, records, CFG, with_bloom=False)
        assert partition.bloom.n_items == 0


class TestExactLookup:
    def test_finds_stored_series(self):
        records, values = make_records(50)
        partition = build_local_partition(0, records, CFG)
        for i in (0, 17, 49):
            sig = records[i][0]
            assert i in partition.exact_lookup(sig, values[i])

    def test_absent_series_not_found(self):
        records, values = make_records(50)
        partition = build_local_partition(0, records, CFG)
        ghost = z_normalize(values[0] + 0.01)
        sig = signature_of_series(ghost, CFG.word_length, CFG.cardinality_bits)
        assert partition.exact_lookup(sig, ghost) == []

    def test_duplicate_series_all_returned(self):
        records, values = make_records(5)
        dup = (records[0][0], 99, values[0])
        partition = build_local_partition(0, records + [dup], CFG)
        found = partition.exact_lookup(records[0][0], values[0])
        assert set(found) == {0, 99}

    def test_unclustered_raises(self):
        records, values = make_records(5)
        partition = build_local_partition(0, records, CFG, clustered=False)
        with pytest.raises(RuntimeError, match="clustered"):
            partition.exact_lookup(records[0][0], values[0])


class TestTargetNode:
    def test_lowest_node_with_k_entries(self):
        records, values = make_records(200, seed=3)
        partition = build_local_partition(0, records, CFG)
        sig = records[0][0]
        for k in (1, 5, 20, 100):
            node = partition.target_node(sig, k)
            assert node.count >= k or node is partition.tree.root
            # Minimality: the on-path child covering sig holds < k.
            child_key = partition.tree._prefix(sig, node.layer + 1)
            child = node.children.get(child_key)
            if child is not None:
                assert child.count < k

    def test_k_larger_than_partition_returns_root(self):
        records, _ = make_records(10)
        partition = build_local_partition(0, records, CFG)
        node = partition.target_node(records[0][0], 500)
        assert node is partition.tree.root

    def test_invalid_k(self):
        records, _ = make_records(5)
        partition = build_local_partition(0, records, CFG)
        with pytest.raises(ValueError):
            partition.target_node(records[0][0], 0)

    def test_entries_under_counts(self):
        records, _ = make_records(100, seed=5)
        partition = build_local_partition(0, records, CFG)
        node = partition.target_node(records[0][0], 30)
        entries = partition.entries_under(node)
        assert len(entries) == node.count >= 30


class TestPrunedEntries:
    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_never_prunes_within_threshold(self, seed):
        """Safety of MINDIST pruning: every entry whose true distance is
        at most the threshold must survive."""
        records, values = make_records(120, seed=7)
        partition = build_local_partition(0, records, CFG)
        rng = np.random.default_rng(seed)
        query = z_normalize(np.cumsum(rng.standard_normal(LENGTH)))
        paa = paa_transform(query, CFG.word_length)
        threshold = 4.0
        rows = partition.pruned_entries(paa, threshold, LENGTH)
        survivors = set(partition.block.record_ids[rows].tolist())
        for i in range(120):
            if euclidean(query, values[i]) <= threshold:
                assert i in survivors

    def test_infinite_threshold_returns_everything(self):
        records, _ = make_records(60)
        partition = build_local_partition(0, records, CFG)
        paa = np.zeros(CFG.word_length)
        got = partition.pruned_entries(paa, np.inf, LENGTH)
        assert len(got) == 60

    def test_skip_excludes_subtree(self):
        records, _ = make_records(60)
        partition = build_local_partition(0, records, CFG)
        sig = records[0][0]
        target = partition.target_node(sig, 5)
        paa = np.zeros(CFG.word_length)
        without = partition.pruned_entries(paa, np.inf, LENGTH, skip=target)
        assert len(without) == 60 - target.count

    def test_zero_threshold_keeps_own_region(self):
        records, values = make_records(40)
        partition = build_local_partition(0, records, CFG)
        paa = paa_transform(values[0], CFG.word_length)
        rows = partition.pruned_entries(paa, 0.0, LENGTH)
        survivors = set(partition.block.record_ids[rows].tolist())
        assert 0 in survivors  # own region has MINDIST 0


class TestNodeMindist:
    def test_root_is_zero(self):
        records, _ = make_records(10)
        partition = build_local_partition(0, records, CFG)
        paa = np.full(CFG.word_length, 3.0)
        assert node_mindist(partition.tree.root, paa, LENGTH, CFG.word_length) == 0.0

    def test_own_leaf_is_zero(self):
        records, values = make_records(30)
        partition = build_local_partition(0, records, CFG)
        paa = paa_transform(values[4], CFG.word_length)
        leaf = partition.tree.descend(records[4][0])
        assert node_mindist(leaf, paa, LENGTH, CFG.word_length) == 0.0
