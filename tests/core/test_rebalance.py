"""Tests for online partition rebalancing."""

import numpy as np
import pytest

from repro.core import (
    TardisConfig,
    build_tardis_index,
    exact_match,
    knn_exact,
    brute_force_knn,
)
from repro.core.rebalance import rebalance_index
from repro.tsdb import TimeSeriesDataset, random_walk


CFG = TardisConfig(g_max_size=200, l_max_size=20, pth=3)


def overflowed_index():
    """An index whose partitions were pushed past capacity by inserts."""
    base = random_walk(1500, length=64, seed=1).z_normalized()
    index = build_tardis_index(base, CFG)
    extra = random_walk(900, length=64, seed=555).z_normalized()
    for row in extra.values:
        index.insert_series(row)
    return index, base, extra


class TestRebalance:
    def test_noop_when_balanced(self, tardis_small):
        report = tardis_small.rebalance()
        assert report.partitions_split == 0
        assert report.partitions_created == 0
        tardis_small.validate()

    def test_reduces_overflow(self):
        index, _base, _extra = overflowed_index()
        threshold = int(CFG.partition_capacity * 1.5)
        assert any(
            p.n_records > threshold for p in index.partitions.values()
        ), "fixture must actually overflow"
        report = index.rebalance()
        assert report.partitions_split > 0
        assert report.partitions_created > 0
        assert max(p.n_records for p in index.partitions.values()) <= max(
            threshold,
            CFG.partition_capacity * 2,  # single unsplittable leaves allowed
        )

    def test_index_valid_after_rebalance(self):
        index, _base, _extra = overflowed_index()
        index.rebalance()
        index.validate()

    def test_queries_correct_after_rebalance(self):
        index, base, extra = overflowed_index()
        index.rebalance()
        for row in (0, 700, 1499):
            assert row in exact_match(index, base.values[row]).record_ids
        assert exact_match(index, extra.values[17]).found

    def test_exact_knn_still_exact(self):
        index, base, extra = overflowed_index()
        index.rebalance()
        combined = TimeSeriesDataset(
            np.vstack([base.values, extra.values]),
            record_ids=np.concatenate(
                [base.record_ids, 1500 + np.arange(len(extra))]
            ),
        )
        rng = np.random.default_rng(2)
        q = rng.standard_normal(64)
        q = (q - q.mean()) / q.std()
        result = knn_exact(index, q, 10)
        truth = brute_force_knn(combined, q, 10)
        assert result.distances == pytest.approx([n.distance for n in truth])

    def test_untouched_partitions_keep_identity(self):
        index, _base, _extra = overflowed_index()
        threshold = int(CFG.partition_capacity * 1.5)
        before = {
            pid: p for pid, p in index.partitions.items()
            if p.n_records <= threshold
        }
        index.rebalance()
        for pid, partition in before.items():
            assert index.partitions[pid] is partition

    def test_idempotent_second_pass(self):
        index, _base, _extra = overflowed_index()
        index.rebalance()
        second = index.rebalance()
        assert second.partitions_split == 0

    def test_invalid_factor(self, tardis_small):
        with pytest.raises(ValueError):
            rebalance_index(tardis_small, overflow_factor=0.5)

    def test_global_partition_count_updated(self):
        index, _base, _extra = overflowed_index()
        index.rebalance()
        assert index.global_index.n_partitions == len(index.partitions)

    def test_sibling_id_lists_resynced(self):
        index, _base, _extra = overflowed_index()
        index.rebalance()
        all_pids = {
            leaf.partition_id
            for leaf in index.global_index.tree.leaves()
            if leaf.partition_id is not None
        }
        assert index.global_index.tree.root.partition_ids == all_pids
