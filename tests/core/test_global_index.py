"""Tests for Tardis-G: layer statistics, skeleton building, and routing."""

import numpy as np
import pytest

from repro.core.config import TardisConfig
from repro.core.global_index import (
    TardisGlobalIndex,
    collect_layer_statistics,
)
from repro.core.isaxt import encode_symbols, reduce_signature


CFG = TardisConfig(word_length=4, cardinality_bits=4, g_max_size=10)


def sig4(*symbols) -> str:
    return encode_symbols(np.array(symbols, dtype=np.uint32), 4)


class TestCollectLayerStatistics:
    def test_stops_at_first_fitting_layer(self):
        # Two far-apart signatures with tiny counts: layer 1 fits both.
        counts = {sig4(0, 0, 0, 0): 3, sig4(15, 15, 15, 15): 4}
        stats = collect_layer_statistics(counts, CFG)
        assert stats.deepest_layer == 1
        assert stats.total == 7
        layer1 = stats.nodes_in_layer(1)
        assert sum(layer1.values()) == 7

    def test_oversized_nodes_descend(self):
        # 30 series share a 1-bit prefix (> G-MaxSize 10): layer 2 needed.
        counts = {
            sig4(0, 0, 0, 0): 15,
            sig4(1, 1, 1, 1): 15,  # same 1-bit prefix (all symbols < 8)
            sig4(15, 15, 15, 15): 5,
        }
        stats = collect_layer_statistics(counts, CFG)
        assert stats.deepest_layer >= 2
        layer1 = stats.nodes_in_layer(1)
        shared_prefix = reduce_signature(sig4(0, 0, 0, 0), 1, 4)
        assert layer1[shared_prefix] == 30
        # The small node stops at layer 1; only the big one has children.
        layer2 = stats.nodes_in_layer(2)
        for node_sig in layer2:
            assert node_sig.startswith(shared_prefix)

    def test_max_depth_reached_despite_overflow(self):
        counts = {sig4(3, 3, 3, 3): 100}
        stats = collect_layer_statistics(counts, CFG)
        assert stats.deepest_layer == CFG.cardinality_bits

    def test_sampling_scale_applied(self):
        counts = {sig4(0, 0, 0, 0): 2}  # sampled: 2 series at 10% = ~20 true
        stats = collect_layer_statistics(counts, CFG, scale=10.0)
        assert stats.total == 20
        # 20 > G-MaxSize 10, so the node must descend past layer 1.
        assert stats.deepest_layer >= 2

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            collect_layer_statistics({}, CFG, scale=0.5)

    def test_wrong_cardinality_rejected(self):
        with pytest.raises(ValueError, match="initial cardinality"):
            collect_layer_statistics({"0": 1}, CFG)

    def test_empty_input(self):
        stats = collect_layer_statistics({}, CFG)
        assert stats.total == 0
        assert stats.deepest_layer == 0


class TestSkeletonBuilding:
    def make_index(self, counts) -> TardisGlobalIndex:
        stats = collect_layer_statistics(counts, CFG)
        return TardisGlobalIndex.from_statistics(stats, CFG)

    def test_root_count_is_total(self):
        counts = {sig4(0, 0, 0, 0): 3, sig4(15, 14, 13, 12): 4}
        index = self.make_index(counts)
        assert index.tree.root.count == 7

    def test_every_leaf_has_partition(self):
        rng = np.random.default_rng(0)
        counts = {
            sig4(*rng.integers(0, 16, size=4)): int(rng.integers(1, 8))
            for _ in range(50)
        }
        index = self.make_index(counts)
        assert index.n_partitions >= 1
        for leaf in index.tree.leaves():
            assert leaf.partition_id is not None

    def test_internal_counts_cover_children(self):
        rng = np.random.default_rng(1)
        counts = {
            sig4(*rng.integers(0, 16, size=4)): int(rng.integers(1, 20))
            for _ in range(60)
        }
        index = self.make_index(counts)
        for node in index.tree.internal_nodes():
            child_total = sum(c.count for c in node.children.values())
            assert node.count >= child_total > 0


class TestRouting:
    def make_index(self, counts) -> TardisGlobalIndex:
        stats = collect_layer_statistics(counts, CFG)
        return TardisGlobalIndex.from_statistics(stats, CFG)

    def test_known_signature_routes_to_its_leaf(self):
        rng = np.random.default_rng(2)
        signatures = [sig4(*rng.integers(0, 16, size=4)) for _ in range(40)]
        counts = {s: 3 for s in signatures}
        index = self.make_index(counts)
        for s in signatures:
            pid = index.route(s)
            leaf = index.locate(s)
            assert leaf.is_leaf
            assert pid == leaf.partition_id

    def test_unseen_signature_falls_back_deterministically(self):
        counts = {sig4(0, 0, 0, 0): 3}
        index = self.make_index(counts)
        unseen = sig4(15, 15, 15, 15)
        pid1 = index.route(unseen)
        pid2 = index.route(unseen)
        assert pid1 == pid2
        assert 0 <= pid1 < index.n_partitions

    def test_sibling_partition_ids_cover_home(self):
        rng = np.random.default_rng(3)
        counts = {
            sig4(*rng.integers(0, 16, size=4)): int(rng.integers(1, 8))
            for _ in range(50)
        }
        index = self.make_index(counts)
        probe = next(iter(counts))
        pid = index.route(probe)
        siblings = index.sibling_partition_ids(probe)
        assert pid in siblings
        assert siblings == sorted(siblings)

    def test_estimated_nbytes_positive_and_monotone(self):
        small = self.make_index({sig4(0, 0, 0, 0): 3})
        rng = np.random.default_rng(4)
        big = self.make_index(
            {sig4(*rng.integers(0, 16, size=4)): 3 for _ in range(60)}
        )
        assert 0 < small.estimated_nbytes() < big.estimated_nbytes()
