"""Write-ahead log: round-trips, torn tails, and replay semantics."""

import json

import numpy as np
import pytest

from repro.core import (
    TardisConfig,
    WriteAheadLog,
    build_tardis_index,
    exact_match,
    read_wal,
    replay_wal,
)
from repro.core.wal import WalError
from repro.tsdb import random_walk

LENGTH = 48


@pytest.fixture()
def base_dataset():
    return random_walk(300, length=LENGTH, seed=11).z_normalized()


@pytest.fixture()
def stream():
    return random_walk(40, length=LENGTH, seed=12).z_normalized().values


def build_base(dataset):
    config = TardisConfig(g_max_size=80, l_max_size=16, seed=5)
    return build_tardis_index(dataset, config)


def append(index, wal, rows):
    """The serving tier's log-before-apply ordering, in miniature."""
    rows = np.asarray(rows, dtype=np.float64)
    rids = [index._next_record_id() for _ in rows]
    wal.log_appends(list(zip(rids, rows)))
    index.ingest(rows, record_ids=rids)
    return rids


class TestWalFile:
    def test_append_roundtrip_exact_bits(self, tmp_path, base_dataset, stream):
        index = build_base(base_dataset)
        path = tmp_path / "a.wal"
        with WriteAheadLog(path) as wal:
            rids = append(index, wal, stream[:5])
            assert wal.appends_logged == 5
        records, torn = read_wal(path)
        assert not torn
        assert [doc["record_id"] for doc in records] == rids
        # repr round-trip: the logged values are the inserted float64
        # bits exactly, not a lossy decimal rendering.
        logged = np.asarray(records[0]["series"], dtype=np.float64)
        np.testing.assert_array_equal(logged, stream[0])

    def test_torn_tail_is_tolerated(self, tmp_path, base_dataset, stream):
        index = build_base(base_dataset)
        path = tmp_path / "torn.wal"
        with WriteAheadLog(path) as wal:
            append(index, wal, stream[:4])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "append", "record_id": 99')  # crash mid-write
        records, torn = read_wal(path)
        assert torn
        assert len(records) == 4
        fresh = build_base(base_dataset)
        report = replay_wal(fresh, path)
        assert report.torn_tail
        assert report.appends_applied == 4

    def test_corruption_before_tail_raises(self, tmp_path):
        path = tmp_path / "bad.wal"
        path.write_text('not json\n{"kind": "append"}\n')
        with pytest.raises(WalError):
            read_wal(path)

    def test_unknown_schema_line_rejected(self, tmp_path):
        path = tmp_path / "schema.wal"
        path.write_text(json.dumps({"schema": "other/v9"}) + "\n")
        with pytest.raises(WalError):
            read_wal(path)


class TestReplay:
    def test_replay_appends_matches_live(self, tmp_path, base_dataset, stream):
        live = build_base(base_dataset)
        path = tmp_path / "replay.wal"
        with WriteAheadLog(path) as wal:
            append(live, wal, stream)
        fresh = build_base(base_dataset)
        report = replay_wal(fresh, path)
        assert report.appends_applied == len(stream)
        assert fresh.n_records == live.n_records
        fresh.validate()
        for row in stream:
            assert (
                exact_match(fresh, row).record_ids
                == exact_match(live, row).record_ids
            )

    def test_begin_without_commit_is_discarded(
        self, tmp_path, base_dataset, stream
    ):
        live = build_base(base_dataset)
        path = tmp_path / "dangling.wal"
        with WriteAheadLog(path) as wal:
            append(live, wal, stream[:6])
            # A crash between begin and commit leaves this marker with
            # nothing after it; replay must land on the pre-split state.
            wal.log_rebalance_begin(1, 1.5, sorted(live.partitions))
        fresh = build_base(base_dataset)
        report = replay_wal(fresh, path)
        assert report.rebalances_discarded == 1
        assert report.rebalances_replayed == 0
        assert sorted(fresh.partitions) == sorted(live.partitions)
        fresh.validate()
