"""Tests for the deep index self-check (TardisIndex.validate)."""

import numpy as np
import pytest

from repro.core import build_tardis_index, load_index, save_index


class TestValidate:
    def test_fresh_build_valid(self, tardis_small):
        tardis_small.validate()

    def test_after_maintenance(self, rw_small, small_config,
                               heldout_queries):
        index = build_tardis_index(rw_small, small_config)
        for q in heldout_queries[:5]:
            index.insert_series(q)
        index.delete_series(rw_small.values[3], 3)
        index.validate()

    def test_after_reload(self, tardis_small, tmp_path):
        save_index(tardis_small, tmp_path / "idx")
        load_index(tmp_path / "idx").validate()

    def test_unclustered_valid(self, rw_small, small_config):
        build_tardis_index(rw_small, small_config, clustered=False).validate()

    def test_detects_count_corruption(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config)
        some = next(iter(index.partitions.values()))
        some.tree.root.count += 1  # corrupt
        with pytest.raises(AssertionError, match="root count"):
            index.validate()

    def test_detects_record_count_drift(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config)
        index.n_records += 7
        with pytest.raises(AssertionError, match="record count"):
            index.validate()

    def test_detects_misplaced_entry(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config)
        pids = sorted(index.partitions)
        src, dst = index.partitions[pids[0]], index.partitions[pids[-1]]
        entry = src.all_entries()[0]
        # Teleport an entry into the wrong partition (counts stay
        # consistent so the misplacement itself is the first violation
        # detected).
        src.remove_record(entry[1])
        dst.insert_record(entry[0], entry[1], entry[2])
        with pytest.raises(AssertionError, match="routes"):
            index.validate()

    def test_detects_synopsis_gap(self, rw_small, small_config):
        index = build_tardis_index(rw_small, small_config)
        some = next(iter(index.partitions.values()))
        some.region_prefixes.clear()
        with pytest.raises(AssertionError, match="synopsis"):
            index.validate()
