"""Tests for the query execution report (explain)."""

import numpy as np

from repro.core import (
    exact_match,
    explain,
    knn_exact,
    knn_multi_partitions_access,
    range_query,
)
from repro.core.batch import batch_knn_target_node


class TestExplain:
    def test_knn_report_contents(self, tardis_small, heldout_queries):
        result = knn_multi_partitions_access(tardis_small, heldout_queries[0], 5)
        report = explain(result)
        assert "answer: 5 neighbors" in report
        assert "partitions loaded" in report
        assert "simulated time" in report
        assert "query/load partitions" in report
        assert "#" in report  # the share bar

    def test_exact_match_found(self, tardis_small, rw_small):
        report = explain(exact_match(tardis_small, rw_small.values[2]))
        assert "record ids [2]" in report
        assert "query/load partition" in report

    def test_exact_match_bloom_rejection(self, tardis_small, rw_small):
        from repro.tsdb.series import z_normalize

        rng = np.random.default_rng(3)
        for i in range(20):
            ghost = z_normalize(rw_small.values[i] + rng.normal(0, 0.1, 64))
            result = exact_match(tardis_small, ghost)
            if result.bloom_rejected:
                report = explain(result)
                assert "not found" in report
                assert "bloom rejected: True" in report
                return
        raise AssertionError("no bloom rejection observed")

    def test_exact_search_prune_stats(self, tardis_small, heldout_queries):
        result = knn_exact(tardis_small, heldout_queries[1], 5)
        report = explain(result)
        assert "candidates examined" in report

    def test_range_query(self, tardis_small, heldout_queries):
        report = explain(range_query(tardis_small, heldout_queries[2], 5.0))
        assert "simulated time" in report

    def test_batch_report(self, tardis_small, heldout_queries):
        batch = batch_knn_target_node(tardis_small, heldout_queries[:5], 3)
        report = explain(batch)
        assert "batch of 5 queries" in report
        assert "batch/partition pass" in report

    def test_object_without_ledger(self):
        class Bare:
            record_ids = [1]

        report = explain(Bare())
        assert "no execution stages recorded" in report
