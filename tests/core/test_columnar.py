"""Columnar block + batched-kernel equivalence suite.

The columnar refactor replaced per-entry scalar code (``decode_signature``
per record, ``mindist_paa_to_word`` per node, ``query_signature`` per
query, tuple-list ranking) with single batched numpy passes.  The scalar
kernels are retained as references; every test here pins a batched kernel
bit-for-bit against its scalar counterpart over hypothesis-generated
inputs — arbitrary word lengths, non-divisible series lengths, and every
cardinality depth — so a vectorization bug can never drift the answers.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import group_queries_by_partition
from repro.core.builder import build_tardis_index
from repro.core.columnar import ColumnarBlock
from repro.core.config import TardisConfig
from repro.core.isaxt import (
    batch_decode_signatures,
    decode_signature,
    signature_of_paa,
    signature_of_series,
)
from repro.core.local_index import build_local_partition
from repro.core.queries import _top_k, query_signature
from repro.tsdb.distance import (
    euclidean,
    mindist_paa_to_word,
    mindist_paa_to_words,
)
from repro.tsdb.paa import paa_transform
from repro.tsdb.sax import MAX_CARDINALITY_BITS, sax_symbols
from repro.tsdb.series import z_normalize

CFG = TardisConfig(word_length=8, cardinality_bits=4, l_max_size=10,
                   g_max_size=100)
LENGTH = 32


def make_records(n: int, seed: int = 0, length: int = LENGTH,
                 config: TardisConfig = CFG):
    rng = np.random.default_rng(seed)
    values = z_normalize(np.cumsum(rng.standard_normal((n, length)), axis=1))
    return [
        (signature_of_series(values[i], config.word_length,
                             config.cardinality_bits), i, values[i])
        for i in range(n)
    ], values


# ---------------------------------------------------------------------------
# ColumnarBlock structure


class TestColumnarBlock:
    def test_from_records_round_trip(self):
        records, values = make_records(40)
        block = ColumnarBlock.from_records(records, CFG.word_length)
        assert block.n_rows == 40
        assert block.clustered
        np.testing.assert_array_equal(block.values, values)
        for row, (sig, rid, series) in enumerate(records):
            assert block.signature_at(row) == sig
            got_sig, got_rid, got_series = block.entry_at(row)
            assert (got_sig, got_rid) == (sig, rid)
            np.testing.assert_array_equal(got_series, series)

    def test_unclustered_has_no_values(self):
        records, _ = make_records(10)
        block = ColumnarBlock.from_records(records, CFG.word_length,
                                           clustered=False)
        assert block.values is None
        assert not block.clustered
        assert block.entry_at(3)[2] is None

    def test_empty_block(self):
        block = ColumnarBlock.empty(CFG.word_length, LENGTH, clustered=True)
        assert block.n_rows == 0
        assert block.values.shape == (0, LENGTH)

    def test_symbols_match_scalar_decode(self):
        records, _ = make_records(30)
        block = ColumnarBlock.from_records(records, CFG.word_length)
        for row, (sig, _rid, _series) in enumerate(records):
            symbols, bits = decode_signature(sig, CFG.word_length)
            assert bits == CFG.cardinality_bits
            np.testing.assert_array_equal(block.symbols[row], symbols)

    def test_append_returns_next_row(self):
        records, _ = make_records(5)
        block = ColumnarBlock.from_records(records, CFG.word_length)
        sig, rid, series = records[0][0], 99, records[0][2]
        symbols, _bits = decode_signature(sig, CFG.word_length)
        row = block.append(sig, rid, series, symbols)
        assert row == 5
        assert block.n_rows == 6
        assert block.signature_at(row) == sig
        assert int(block.record_ids[row]) == 99

    def test_append_widens_signature_dtype(self):
        records, _ = make_records(3)
        block = ColumnarBlock.from_records(records, CFG.word_length)
        wide_sig = records[0][0] * 2  # longer than any stored signature
        symbols = np.zeros(CFG.word_length, dtype=np.uint32)
        row = block.append(wide_sig, 7, records[0][2], symbols)
        assert block.signature_at(row) == wide_sig  # not truncated
        assert block.signature_at(0) == records[0][0]  # others intact

    def test_plain_pickle_round_trip(self):
        """Outside an exporting block, pickling must not create shm
        segments — persistence and deepcopy rely on plain arrays."""
        records, _ = make_records(20)
        block = ColumnarBlock.from_records(records, CFG.word_length)
        clone = pickle.loads(pickle.dumps(block))
        np.testing.assert_array_equal(clone.values, block.values)
        np.testing.assert_array_equal(clone.record_ids, block.record_ids)
        np.testing.assert_array_equal(clone.signatures, block.signatures)
        np.testing.assert_array_equal(clone.symbols, block.symbols)


# ---------------------------------------------------------------------------
# Batched kernels == scalar references


@st.composite
def word_setup(draw):
    """(word_length, bits, paa matrix) with arbitrary shapes."""
    w = draw(st.sampled_from([4, 8, 12, 16]))
    bits = draw(st.integers(1, MAX_CARDINALITY_BITS))
    n = draw(st.integers(1, 12))
    paa = draw(
        st.lists(
            st.lists(
                st.floats(-3.5, 3.5, allow_nan=False, width=32),
                min_size=w, max_size=w,
            ),
            min_size=n, max_size=n,
        )
    )
    return w, bits, np.asarray(paa, dtype=np.float64)


class TestBatchDecodeEquivalence:
    @given(word_setup())
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_decode(self, setup):
        w, bits, paa = setup
        signatures = [signature_of_paa(row, bits) for row in paa]
        symbols, got_bits = batch_decode_signatures(signatures, w)
        assert got_bits == bits
        assert symbols.shape == (len(signatures), w)
        for i, sig in enumerate(signatures):
            ref_symbols, ref_bits = decode_signature(sig, w)
            assert ref_bits == bits
            np.testing.assert_array_equal(symbols[i], ref_symbols)

    def test_empty_batch(self):
        symbols, bits = batch_decode_signatures([], 8)
        assert symbols.shape == (0, 8)

    def test_ragged_bit_depths_rejected(self):
        a = signature_of_paa(np.zeros(4), 2)
        b = signature_of_paa(np.zeros(4), 3)
        with pytest.raises(ValueError):
            batch_decode_signatures([a, b], 4)


class TestBatchMindistEquivalence:
    @given(word_setup(), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_mindist(self, setup, qseed):
        w, bits, paa = setup
        # Series length deliberately not divisible by w half the time.
        n_length = w * 4 + (qseed % 3)
        rng = np.random.default_rng(qseed)
        query_paa = rng.standard_normal(w)
        words = sax_symbols(paa, bits)
        batched = mindist_paa_to_words(query_paa, words, bits, n_length)
        assert batched.shape == (len(words),)
        for i in range(len(words)):
            scalar = mindist_paa_to_word(query_paa, words[i], bits, n_length)
            assert batched[i] == pytest.approx(scalar, abs=1e-12)

    def test_empty_words(self):
        out = mindist_paa_to_words(np.zeros(4), np.zeros((0, 4), dtype=np.uint32),
                                   2, 16)
        assert out.shape == (0,)


class TestBatchConversionEquivalence:
    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_group_conversion_matches_query_signature(self, tardis_tiny, seed):
        rng = np.random.default_rng(seed)
        queries = z_normalize(
            np.cumsum(rng.standard_normal((6, LENGTH)), axis=1)
        )
        groups, converted = group_queries_by_partition(tardis_tiny, queries)
        assert len(converted) == len(queries)
        for i, (sig, paa) in enumerate(converted):
            ref_sig, ref_paa = query_signature(tardis_tiny, queries[i])
            assert sig == ref_sig
            np.testing.assert_array_equal(paa, ref_paa)
        # Grouping covers every query exactly once, routed consistently.
        routed = sorted(i for idx in groups.values() for i in idx)
        assert routed == list(range(len(queries)))
        for pid, idx in groups.items():
            for i in idx:
                assert tardis_tiny.global_index.route(converted[i][0]) == pid

    def test_empty_batch(self, tardis_tiny):
        groups, converted = group_queries_by_partition(
            tardis_tiny, np.zeros((0, LENGTH))
        )
        assert groups == {} and converted == []


@pytest.fixture(scope="module")
def tardis_tiny():
    from repro.tsdb import random_walk

    dataset = random_walk(400, length=LENGTH, seed=11).z_normalized()
    return build_tardis_index(dataset, CFG)


class TestTopKEquivalence:
    @given(st.integers(0, 1000), st.integers(1, 15))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_ranking(self, seed, k):
        records, values = make_records(60, seed=5)
        partition = build_local_partition(0, records, CFG)
        rng = np.random.default_rng(seed)
        query = z_normalize(np.cumsum(rng.standard_normal(LENGTH)))
        rows = np.arange(partition.block.n_rows)
        got = _top_k(query, partition, rows, k)
        # Scalar reference: python sort on (distance, record_id).
        scored = sorted(
            (euclidean(query, values[i]), i) for i in range(len(values))
        )[:k]
        assert [n.record_id for n in got] == [rid for _d, rid in scored]
        assert [n.distance for n in got] == pytest.approx(
            [d for d, _rid in scored]
        )

    def test_empty_rows(self):
        records, _ = make_records(5)
        partition = build_local_partition(0, records, CFG)
        assert _top_k(np.zeros(LENGTH), partition,
                      np.array([], dtype=np.int64), 3) == []
