"""Edge-case tests for query processing: tiny k, tiny pth, duplicates,
degenerate configurations."""

import numpy as np
import pytest

from repro.core import (
    TardisConfig,
    build_tardis_index,
    exact_match,
    knn_exact,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.tsdb import TimeSeriesDataset, random_walk
from repro.tsdb.series import z_normalize


class TestTinyK:
    @pytest.mark.parametrize("fn", [
        knn_target_node_access, knn_one_partition_access,
        knn_multi_partitions_access, knn_exact,
    ], ids=["tna", "opa", "mpa", "exact"])
    def test_k_equals_one(self, fn, tardis_small, heldout_queries):
        result = fn(tardis_small, heldout_queries[0], 1)
        assert len(result.neighbors) == 1

    @pytest.mark.parametrize("fn", [
        knn_target_node_access, knn_one_partition_access,
        knn_multi_partitions_access, knn_exact,
    ], ids=["tna", "opa", "mpa", "exact"])
    def test_zero_k_rejected(self, fn, tardis_small, heldout_queries):
        with pytest.raises(ValueError):
            fn(tardis_small, heldout_queries[0], 0)


class TestTinyPth:
    def test_pth_one_still_answers(self, tardis_small, heldout_queries):
        result = knn_multi_partitions_access(
            tardis_small, heldout_queries[1], 10, pth=1
        )
        assert len(result.neighbors) == 10
        assert result.partitions_loaded == 1


class TestDuplicateHeavyData:
    @pytest.fixture(scope="class")
    def dupes(self):
        """A dataset where one exact series repeats 200 times."""
        base = random_walk(500, length=32, seed=6).z_normalized()
        repeated = np.tile(base.values[0], (200, 1))
        values = np.vstack([base.values, repeated])
        dataset = TimeSeriesDataset(values)
        index = build_tardis_index(
            dataset, TardisConfig(g_max_size=150, l_max_size=15)
        )
        return dataset, index

    def test_exact_match_returns_all_copies(self, dupes):
        dataset, index = dupes
        result = exact_match(index, dataset.values[0])
        assert len(result.record_ids) == 201  # original + 200 copies

    def test_knn_on_duplicate_returns_zero_distances(self, dupes):
        dataset, index = dupes
        result = knn_exact(index, dataset.values[0], 50)
        assert all(d == 0.0 for d in result.distances)
        assert len(set(result.record_ids)) == 50

    def test_structure_survives(self, dupes):
        _dataset, index = dupes
        index.validate()


class TestSingletonDataset:
    def test_one_series_index(self):
        dataset = random_walk(1, length=32, seed=7).z_normalized()
        index = build_tardis_index(
            dataset, TardisConfig(g_max_size=10, l_max_size=5)
        )
        assert exact_match(index, dataset.values[0]).record_ids == [0]
        result = knn_target_node_access(index, dataset.values[0], 5)
        assert result.record_ids == [0]  # only one answer exists


class TestQueryDtypeRobustness:
    def test_float32_query_accepted(self, tardis_small, rw_small):
        q32 = rw_small.values[3].astype(np.float32)
        # float32 round-trip perturbs values: signature may shift, exact
        # match legitimately misses, but kNN must still run and find the
        # float64 original as nearest.
        result = knn_exact(tardis_small, q32.astype(np.float64), 1)
        assert result.neighbors[0].record_id == 3

    def test_list_input_accepted(self, tardis_small, rw_small):
        as_list = rw_small.values[4].tolist()
        result = knn_target_node_access(tardis_small, np.array(as_list), 1)
        assert result.neighbors[0].record_id == 4


class TestQueryOutOfDistribution:
    def test_extreme_query_still_answers(self, tardis_small):
        """A query far outside the data: all strategies return k results
        with finite distances (fallback routing is total)."""
        q = z_normalize(np.linspace(-1, 1, 64) ** 3)
        for fn in (knn_target_node_access, knn_one_partition_access,
                   knn_multi_partitions_access):
            result = fn(tardis_small, q, 5)
            assert len(result.neighbors) == 5
            assert all(np.isfinite(d) for d in result.distances)
