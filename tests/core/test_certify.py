"""Tests for query-time answer certification."""

import numpy as np
import pytest

from repro.core import (
    TardisConfig,
    brute_force_knn,
    build_tardis_index,
    certified_prefix,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.tsdb import noaa_like
from repro.tsdb.series import z_normalize


def _query(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return z_normalize(np.cumsum(rng.standard_normal(64)))


class TestSoundness:
    """The load-bearing property: a certified prefix IS the true prefix."""

    @pytest.mark.parametrize("strategy", [
        knn_one_partition_access, knn_multi_partitions_access,
    ], ids=["opa", "mpa"])
    def test_certified_prefix_matches_truth(self, tardis_small, rw_small,
                                            strategy):
        for seed in range(20):
            q = _query(seed)
            result = strategy(tardis_small, q, 10)
            m = certified_prefix(tardis_small, q, result)
            assert 0 <= m <= 10
            if m:
                truth = brute_force_knn(rw_small, q, m)
                assert result.record_ids[:m] == [n.record_id for n in truth]

    def test_full_coverage_certifies_everything(self, tardis_small,
                                                rw_small):
        q = _query(99)
        result = knn_multi_partitions_access(
            tardis_small, q, 10, pth=len(tardis_small.partitions)
        )
        if result.partitions_loaded == len(tardis_small.partitions):
            assert certified_prefix(tardis_small, q, result) == 10
            truth = brute_force_knn(rw_small, q, 10)
            assert result.record_ids == [n.record_id for n in truth]

    def test_certification_useful_on_separated_data(self):
        """On skewed (well-separated) data the bound actually bites."""
        dataset = noaa_like(4000, seed=3)
        index = build_tardis_index(
            dataset, TardisConfig(g_max_size=400, l_max_size=40, pth=5)
        )
        rng = np.random.default_rng(4)
        certified = 0
        for _ in range(15):
            base = dataset.values[rng.integers(len(dataset))]
            q = z_normalize(base + rng.normal(0, 0.1, dataset.length))
            result = knn_multi_partitions_access(index, q, 10)
            m = certified_prefix(index, q, result)
            certified += m
            if m:
                truth = brute_force_knn(dataset, q, m)
                assert result.record_ids[:m] == [n.record_id for n in truth]
        assert certified > 0, "certification should fire on separated data"


class TestGuards:
    def test_target_node_results_rejected(self, tardis_small):
        result = knn_target_node_access(tardis_small, _query(1), 5)
        with pytest.raises(ValueError, match="Target Node Access"):
            certified_prefix(tardis_small, _query(1), result)

    def test_foreign_result_rejected(self, tardis_small):
        from repro.core.queries import KnnResult

        with pytest.raises(ValueError, match="foreign"):
            certified_prefix(tardis_small, _query(2), KnnResult(neighbors=[]))

    def test_strategy_tags_present(self, tardis_small):
        assert knn_target_node_access(
            tardis_small, _query(3), 3
        ).strategy == "target-node"
        assert knn_one_partition_access(
            tardis_small, _query(3), 3
        ).strategy == "one-partition"
        assert knn_multi_partitions_access(
            tardis_small, _query(3), 3
        ).strategy == "multi-partitions"
