"""Router synopses: bounds bit-identical to the partitions they mirror.

The entire cross-topology equivalence guarantee stands on one fact:
the router's MINDIST lower bound for a partition it has never loaded
equals :meth:`LocalPartition.region_bound` exactly.  These tests pin
that equality for every partition and a spread of queries, plus the
wire round-trip that ships synopses to a detached router.
"""

import numpy as np

from repro.sharding import PartitionSynopsis, RouterIndex
from repro.tsdb.paa import paa_transform


def _paa(index, series):
    return paa_transform(
        np.asarray(series, dtype=np.float64), index.config.word_length
    )


class TestBoundEquality:
    def test_bound_matches_partition_for_every_partition(
        self, tardis_small, heldout_queries
    ):
        router_index = RouterIndex.from_index(tardis_small)
        for query in heldout_queries[:6]:
            paa = _paa(tardis_small, query)
            for pid, partition in tardis_small.partitions.items():
                want = partition.region_bound(paa, tardis_small.series_length)
                got = router_index.bound_of(pid, paa)
                assert got == want  # exact float equality, no tolerance

    def test_bound_round_trips_through_wire_form(self, tardis_small,
                                                 heldout_queries):
        router_index = RouterIndex.from_index(tardis_small)
        paa = _paa(tardis_small, heldout_queries[0])
        for pid, synopsis in router_index.synopses.items():
            thawed = PartitionSynopsis.from_dict(synopsis.to_dict())
            assert thawed.region_prefixes == synopsis.region_prefixes
            assert thawed.bound(paa, tardis_small.series_length) == \
                synopsis.bound(paa, tardis_small.series_length)

    def test_empty_synopsis_is_infinite(self):
        empty = PartitionSynopsis(
            partition_id=9, n_records=0, word_length=8, region_prefixes=(),
        )
        assert empty.bound(np.zeros(8), 64) == np.inf


class TestRouterIndex:
    def test_counts_and_config_survive_extraction(self, tardis_small):
        router_index = RouterIndex.from_index(tardis_small)
        assert router_index.n_records == sum(
            p.n_records for p in tardis_small.partitions.values()
        )
        assert router_index.series_length == tardis_small.series_length
        assert router_index.config is tardis_small.config
        assert set(router_index.synopses) == set(tardis_small.partitions)

    def test_routing_uses_the_same_global_index(self, tardis_small,
                                                heldout_queries):
        from repro.core.queries import query_signature

        router_index = RouterIndex.from_index(tardis_small)
        for query in heldout_queries[:5]:
            signature, _paa_word = query_signature(tardis_small, query)
            assert router_index.global_index.route(signature) == \
                tardis_small.global_index.route(signature)
