"""Cross-topology equivalence: the sharded answer IS the answer.

The acceptance bar for the sharded tier mirrors the serving tier's
(`tests/serving/test_service_equivalence.py`): for a fixed index and
query set, results through a 3-shard router — any shard executor
backend, any replication factor — are *identical* to the same queries
issued serially through :mod:`repro.core.queries`.  Identical means
exact equality of record ids, float distances (ties included), and the
accounting fields; the shards run the single-process kernels over
subset indices and the router reuses the single-process fan-out
selection and merge rules, so there is no tolerance to hide behind.
"""

import numpy as np
import pytest

from repro.core.queries import (
    exact_match,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.serving import QueryRequest

BACKENDS = ("serial", "threads")


@pytest.fixture(scope="module")
def query_mix(rw_small, heldout_queries):
    """Present rows (exact hits, partition reuse) plus held-out probes."""
    return np.vstack([rw_small.values[:10], heldout_queries[:8]])


def _reference(index, queries, op, strategy, k, pth):
    if op == "exact-match":
        return [exact_match(index, q) for q in queries]
    fn = {
        "target-node": lambda q: knn_target_node_access(index, q, k),
        "one-partition": lambda q: knn_one_partition_access(index, q, k),
        "multi-partitions": lambda q: knn_multi_partitions_access(
            index, q, k, pth=pth
        ),
    }[strategy]
    return [fn(q) for q in queries]


def _routed(router, queries, op, strategy, k, pth):
    futures = [
        router.submit(
            QueryRequest(q, op=op, strategy=strategy, k=k, pth=pth)
        )
        for q in queries
    ]
    return [f.result(timeout=60) for f in futures]


def assert_knn_identical(served, reference):
    for got, want in zip(served, reference):
        assert got.strategy == want.strategy
        assert got.record_ids == want.record_ids
        assert got.distances == want.distances  # exact float equality
        assert got.candidates_examined == want.candidates_examined
        assert sorted(got.partition_ids_loaded) == sorted(
            want.partition_ids_loaded
        )
        assert not got.degraded
        assert got.missing_partitions == []


@pytest.mark.parametrize("backend", BACKENDS)
class TestEquivalencePerBackend:
    """3 shards, R=0, per shard-executor backend."""

    @pytest.fixture()
    def router(self, tardis_small, router_factory, backend):
        with router_factory(
            tardis_small, n_shards=3,
            service_kwargs={"executor": backend, "jobs": 2},
        ) as (router, _cluster):
            yield router

    def test_exact_match(self, tardis_small, query_mix, router):
        reference = _reference(
            tardis_small, query_mix, "exact-match", None, 0, None
        )
        served = _routed(router, query_mix, "exact-match", None, 0, None)
        for got, want in zip(served, reference):
            assert got.record_ids == want.record_ids
            assert got.bloom_rejected == want.bloom_rejected
            assert got.found == want.found

    def test_knn_target_node(self, tardis_small, query_mix, router):
        reference = _reference(
            tardis_small, query_mix, "knn", "target-node", 10, None
        )
        served = _routed(router, query_mix, "knn", "target-node", 10, None)
        assert_knn_identical(served, reference)

    def test_knn_one_partition(self, tardis_small, query_mix, router):
        reference = _reference(
            tardis_small, query_mix, "knn", "one-partition", 10, None
        )
        served = _routed(router, query_mix, "knn", "one-partition", 10, None)
        assert_knn_identical(served, reference)

    def test_knn_multi_partitions(self, tardis_small, query_mix, router):
        reference = _reference(
            tardis_small, query_mix, "knn", "multi-partitions", 10, 3
        )
        served = _routed(
            router, query_mix, "knn", "multi-partitions", 10, 3
        )
        assert_knn_identical(served, reference)


@pytest.mark.parametrize("pth", (1, 2, 4, None))
def test_fanout_cap_respected_and_identical(
    tardis_small, query_mix, router_factory, pth
):
    """The router applies the paper's pth cap itself (it picks which
    partitions to scatter to), yet the capped answer still matches the
    single-process capped answer — same selection rule, same merge."""
    reference = _reference(
        tardis_small, query_mix[:8], "knn", "multi-partitions", 10, pth
    )
    with router_factory(tardis_small, n_shards=3) as (router, _cluster):
        served = _routed(
            router, query_mix[:8], "knn", "multi-partitions", 10, pth
        )
    assert_knn_identical(served, reference)
    cap = pth if pth is not None else tardis_small.config.pth
    assert all(len(r.partition_ids_loaded) <= cap for r in served)


@pytest.mark.parametrize("topology", ((1, 0), (2, 1), (4, 0), (4, 2)))
def test_equivalence_across_topologies(
    tardis_small, query_mix, router_factory, topology
):
    """Shard count and replication are deployment knobs, never
    correctness knobs."""
    n_shards, replication = topology
    reference = _reference(
        tardis_small, query_mix[:6], "knn", "multi-partitions", 10, 3
    )
    with router_factory(
        tardis_small, n_shards=n_shards, replication=replication
    ) as (router, _cluster):
        served = _routed(
            router, query_mix[:6], "knn", "multi-partitions", 10, 3
        )
    assert_knn_identical(served, reference)


def test_tie_breaks_survive_the_wire(tardis_small, rw_small,
                                     router_factory):
    """Querying an indexed row yields a 0.0-distance self-hit and
    near-ties among close neighbors; the (distance, record_id)
    tie-break must order them identically through the scatter/gather
    merge — the sharpest bit-equivalence probe."""
    with router_factory(tardis_small, n_shards=3) as (router, _cluster):
        for row in (0, 1, 2, 3, 4):
            series = rw_small.values[row]
            want = knn_multi_partitions_access(tardis_small, series, 10)
            got = router.query(QueryRequest(
                series, op="knn", strategy="multi-partitions", k=10
            ), timeout=60)
            assert want.distances[0] == 0.0
            assert got.record_ids == want.record_ids
            assert got.distances == want.distances


def test_router_stats_expose_topology(tardis_small, router_factory):
    with router_factory(
        tardis_small, n_shards=3, replication=1
    ) as (router, _cluster):
        router.query(QueryRequest(
            np.zeros(tardis_small.series_length), op="knn",
            strategy="target-node", k=3,
        ), timeout=60)
        report = router.stats()
    assert report["topology"]["shards"] == 3
    assert report["topology"]["replicas"] == 1
    assert report["topology"]["pth"] == tardis_small.config.pth
    assert len(report["shards"]) == 3
    assert all(s["requests"] >= 0 for s in report["shards"])
    assert report["requests_completed"] >= 1


def test_wrong_length_query_rejected_at_submit(tardis_small,
                                               router_factory):
    with router_factory(tardis_small, n_shards=2) as (router, _cluster):
        with pytest.raises(ValueError, match="length"):
            router.submit(QueryRequest(np.zeros(7), op="exact-match"))
