"""Cross-shard distributed tracing and metrics federation, end to end.

One sharded request must yield exactly ONE trace: router queue-wait,
seed/scatter/gather phases, per-shard-call legs, and every shard's
execute subtree re-parented under the call that made it — orphan-free
under ``validate --trace --expect-roots serve/request`` across the
whole cluster.  Shard replies on the router path carry the capped
compact summary (never the full recursive tree) and only for
deterministically sampled traces.
"""

import json

import numpy as np
import pytest

from repro.serving import QueryRequest, ServingClient
from repro.telemetry import write_trace
from repro.telemetry.carrier import CARRIER_SCHEMA, COMPACT_SPAN_CAP
from repro.telemetry.journal import validate_journal_lines
from repro.telemetry.spans import disable_tracing, enable_tracing
from repro.telemetry.validate import main as validate_main
from repro.tsdb import random_walk


@pytest.fixture
def tracer():
    tracer = enable_tracing()
    try:
        yield tracer
    finally:
        disable_tracing()


@pytest.fixture
def query(tardis_small):
    return random_walk(
        1, length=tardis_small.series_length, seed=77
    ).z_normalized().values[0]


def _span_names(doc, depth=0):
    yield doc["name"], depth
    for child in doc.get("children", []):
        yield from _span_names(child, depth + 1)


def _walk(doc, parent=None):
    yield doc, parent
    for child in doc.get("children", []):
        yield from _walk(child, doc)


def test_one_request_one_cluster_trace(
    router_factory, tardis_small, tracer, query, tmp_path
):
    with router_factory(tardis_small, n_shards=3) as (router, _cluster):
        result = router.query(QueryRequest(
            query, op="knn", strategy="multi-partitions", k=5
        ), timeout=30)
        assert result.neighbors

        roots = tracer.roots
        assert [r.name for r in roots] == ["serve/request"]
        doc = roots[0].to_dict()
        names = {name for name, _ in _span_names(doc)}
        for want in ("serve/queue-wait", "route/execute", "route/seed",
                     "route/scatter", "route/gather", "route/shard-call",
                     "shard/request"):
            assert want in names, f"missing {want} in {sorted(names)}"

        # every shard execute segment is re-parented under the router
        # call that made it, and the whole tree shares one trace id
        shard_spans = 0
        for span, parent in _walk(doc):
            assert span["trace_id"] == doc["trace_id"]
            if span["name"] == "shard/request":
                shard_spans += 1
                assert parent["name"] == "route/shard-call"
                assert "shard_id" in span["attributes"]
        assert shard_spans >= 2  # seed + at least one scatter leg

        # the exported forest passes the cluster-wide orphan gate
        path = tmp_path / "trace.json"
        write_trace(tracer, path)
        assert validate_main(
            ["--trace", str(path), "--expect-roots", "serve/request"]
        ) == 0


def test_shard_reply_is_compact_capped_and_sampled(
    router_factory, tardis_small, tracer, query
):
    """Satellite regression: a carrier-stamped shard-knn reply never
    carries the full recursive span tree — only the capped compact
    summary, and only when the trace id samples in."""
    with router_factory(tardis_small, n_shards=2) as (router, cluster):
        host, port = cluster.addresses[0]
        pids = sorted(router.plan.hosted(0))
        doc = {
            "op": "shard-knn", "series": query.tolist(), "k": 3,
            "partitions": pids, "threshold": None, "trace": True,
            "ctx": {"schema": CARRIER_SCHEMA, "trace_id": "cafe" * 4,
                    "parent_span_id": "beef" * 4},
        }
        with ServingClient(host, port, timeout=10.0) as client:
            reply = client.call(dict(doc))["result"]
            assert reply["trace"]["compact"] is True
            assert len(reply["trace"]["spans"]) <= COMPACT_SPAN_CAP
            assert "children" not in reply["trace"]
            rows = reply["trace"]["spans"]
            assert rows[0][0] == "shard/request"

            # sampled out: same request, rate 0 → no trace payload at all
            reply = client.call(dict(doc, trace_sample=0.0))["result"]
            assert reply["trace"] is None

            # no carrier → the direct-client path still gets the full
            # tree (query-remote --trace relies on it)
            bare = {k: v for k, v in doc.items() if k != "ctx"}
            reply = client.call(bare)["result"]
            assert "compact" not in reply["trace"]
            assert reply["trace"]["name"] == "shard/request"


def test_trace_sample_zero_keeps_router_segments_orphan_free(
    router_factory, tardis_small, tracer, query
):
    with router_factory(
        tardis_small, n_shards=3, trace_sample=0.0
    ) as (router, _cluster):
        router.query(QueryRequest(
            query, op="knn", strategy="multi-partitions", k=5
        ), timeout=30)
        roots = tracer.roots
        assert [r.name for r in roots] == ["serve/request"]
        names = {n for n, _ in _span_names(roots[0].to_dict())}
        assert "route/shard-call" in names
        assert "shard/request" not in names  # sampled out, not orphaned


def test_federation_scrape_and_cluster_report(
    router_factory, tardis_small, tracer, query
):
    with router_factory(tardis_small, n_shards=3) as (router, _cluster):
        for _ in range(3):
            router.query(QueryRequest(
                query, op="knn", strategy="multi-partitions", k=5
            ), timeout=30)
        status = router.scrape_now()
        assert status == {0: True, 1: True, 2: True}
        report = router.stats()
        cluster_view = report["cluster"]
        assert cluster_view["scrapes"] == 1
        assert [row["shard_id"] for row in cluster_view["shards"]] \
            == [0, 1, 2]
        assert report["config"]["trace_sample"] == 1.0
        latency = cluster_view["shard_latency"]
        assert latency["samples"] > 0
        assert 0.0 < latency["p95_s"] < 60.0

        # second scrape drains nothing new but keeps watermarks sane
        router.scrape_now()
        assert router.stats()["cluster"]["scrapes"] == 2


def test_merged_cluster_journal_validates(
    router_factory, tardis_small, tracer, query, tmp_path
):
    with router_factory(
        tardis_small, n_shards=2,
        journal_sample=1.0, service_kwargs={"journal_sample": 1.0},
    ) as (router, _cluster):
        router.query(QueryRequest(
            query, op="knn", strategy="multi-partitions", k=5
        ), timeout=30)
        path = tmp_path / "cluster.journal.jsonl"
        router.write_cluster_journal(path)
    text = path.read_text()
    assert validate_journal_lines(text) > 0
    header = json.loads(text.splitlines()[0])
    assert "router" in header["sources"]
    assert any(s.startswith("shard-") for s in header["sources"])
    records = [json.loads(line) for line in text.splitlines()[1:]]
    assert all("source" in r for r in records)
    shard_sourced = [r for r in records if r["source"].startswith("shard-")]
    assert shard_sourced and all("shard_id" in r for r in shard_sourced)
