"""Write-stream equivalence across deployment shapes.

The same acknowledged write stream applied through a threads-mode
cluster, a processes-mode cluster, and a single-process QueryService
must leave every surface agreeing: assigned record ids, exact-match
answers, MPA kNN answers (including tie-breaks), and the per-shard
record layout implied by Tardis-G routing.
"""

import numpy as np
import pytest

from repro.core import TardisConfig, build_tardis_index
from repro.core.persistence import save_index
from repro.sharding import RouterIndex, RouterService, ShardCluster
from repro.sharding.assignment import plan_shards
from repro.serving import QueryRequest, QueryService, ServingClient, TardisServer
from repro.tsdb import random_walk

LENGTH = 48
BASE_N = 600
N_SHARDS = 3
K = 5

_config = dict(g_max_size=100, l_max_size=20, pth=4, seed=17)


@pytest.fixture(scope="module")
def ingest_dataset():
    return random_walk(BASE_N, length=LENGTH, seed=41).z_normalized()


@pytest.fixture(scope="module")
def write_stream():
    return random_walk(60, length=LENGTH, seed=42).z_normalized().values


@pytest.fixture(scope="module")
def probes():
    return random_walk(5, length=LENGTH, seed=43).z_normalized().values


def fresh_index(dataset):
    return build_tardis_index(dataset, TardisConfig(**_config))


def batches(stream, size=6):
    return [stream[i:i + size] for i in range(0, len(stream), size)]


@pytest.fixture(scope="module")
def reference(ingest_dataset, write_stream, probes):
    """Single-process serving over the same write stream."""
    index = fresh_index(ingest_dataset)
    acks = []
    with QueryService(index, max_delay_ms=1.0,
                      result_cache_size=None) as svc:
        for chunk in batches(write_stream):
            acks.append(svc.write(chunk).record_ids)
        exact = [
            sorted(svc.query(QueryRequest(row, op="exact-match")).record_ids)
            for row in write_stream[:8]
        ]
        knn = [
            (svc.query(q).record_ids, svc.query(q).distances)
            for q in (
                QueryRequest(p, op="knn", strategy="multi-partitions", k=K)
                for p in probes
            )
        ]
    counts = {pid: p.n_records for pid, p in index.partitions.items()}
    return {"acks": acks, "exact": exact, "knn": knn, "counts": counts}


def drive_cluster(router, reference, write_stream, probes):
    """Write the stream through the router's wire ops, then compare
    every read surface against the single-process reference."""
    server = TardisServer(router, "127.0.0.1", 0)
    server.start()
    host, port = server.address
    try:
        with ServingClient(host, port) as client:
            for chunk, want_ids in zip(batches(write_stream),
                                       reference["acks"]):
                ack = client.write_batch(chunk.tolist())
                assert ack["record_ids"] == want_ids
                assert not ack.get("replicas_failed")
            got_exact = [
                sorted(client.exact_match(row)["record_ids"])
                for row in write_stream[:8]
            ]
            assert got_exact == reference["exact"]
            for probe, (want_ids, want_dists) in zip(probes,
                                                     reference["knn"]):
                got = client.knn(probe, k=K, strategy="multi-partitions")
                assert got["record_ids"] == want_ids
                assert got["distances"] == pytest.approx(want_dists)
        ingest = router.stats()["ingest"]
        assert ingest["writes_failed"] == 0
        assert ingest["write_records_total"] == len(write_stream)
    finally:
        server.close(drain=True)


def shard_layout(cluster, plan):
    """Per-shard record totals scraped from the live shard services."""
    totals = {}
    for shard_id, (host, port) in enumerate(cluster.addresses):
        with ServingClient(host, port) as client:
            report = client.stats()
        totals[shard_id] = report["shard"]["n_records"]
    return totals


def expected_layout(plan, counts):
    return {
        shard_id: sum(counts[pid] for pid in plan.hosted(shard_id))
        for shard_id in range(plan.n_shards)
    }


def test_threads_cluster_matches_single_process(
    ingest_dataset, write_stream, probes, reference
):
    index = fresh_index(ingest_dataset)
    with ShardCluster.for_index(
        index, N_SHARDS, replication=1, mode="threads",
        service_kwargs={"result_cache_size": None, "max_delay_ms": 1.0},
    ) as cluster:
        with RouterService(
            RouterIndex.from_index(index), cluster.plan, cluster.addresses,
            result_cache_size=None, health_interval_s=0.0,
        ) as router:
            drive_cluster(router, reference, write_stream, probes)
            got = shard_layout(cluster, cluster.plan)
    # Threads mode shares partition objects between replicas, so the
    # routed rows land exactly where the single-process build puts them.
    assert got == expected_layout(cluster.plan, reference["counts"])


def test_processes_cluster_matches_single_process(
    ingest_dataset, write_stream, probes, reference, tmp_path_factory
):
    index = fresh_index(ingest_dataset)
    index_dir = tmp_path_factory.mktemp("ingest-shards") / "index"
    save_index(index, index_dir)
    plan = plan_shards(
        {pid: p.n_records for pid, p in index.partitions.items()},
        2, replication=1,
    )
    with ShardCluster(
        plan, mode="processes", index_dir=str(index_dir),
        service_kwargs={"result_cache_size": None, "max_delay_ms": 1.0},
    ) as cluster:
        with RouterService(
            RouterIndex.from_index(index), plan, cluster.addresses,
            result_cache_size=None, call_timeout_s=15.0,
            health_interval_s=0.0,
        ) as router:
            drive_cluster(router, reference, write_stream, probes)
            got = shard_layout(cluster, plan)
    assert got == expected_layout(plan, reference["counts"])
