"""Shard plans: FFD balance, chained replicas, wire round-trip."""

import pytest

from repro.sharding import ShardPlan, plan_shards


def sizes(n=19, seed=5):
    """Deterministic skewed partition sizes (ids not contiguous)."""
    return {3 * i + 1: 40 + ((seed + i * i * 31) % 260) for i in range(n)}


class TestPlanShards:
    @pytest.mark.parametrize("n_shards", (1, 2, 3, 4, 7))
    def test_disjoint_and_complete(self, n_shards):
        table = sizes()
        plan = plan_shards(table, n_shards)
        assert plan.n_shards == n_shards
        assert plan.all_partitions == sorted(table)
        owned = [pid for group in plan.shards for pid in group]
        assert len(owned) == len(set(owned))

    @pytest.mark.parametrize("n_shards", (2, 3, 4))
    def test_record_totals_balanced(self, n_shards):
        table = sizes()
        plan = plan_shards(table, n_shards)
        total = sum(table.values())
        capacity = -(-total // n_shards)
        totals = [sum(table[pid] for pid in group) for group in plan.shards]
        # FFD with one merge pass: no shard carries more than twice the
        # ideal share (the classic FFD bound survives the merge because
        # the two merged bins are the lightest).
        assert max(totals) <= 2 * capacity
        # Heaviest-first ordering: shard 0 is the hottest.
        assert totals == sorted(totals, reverse=True)

    def test_more_shards_than_partitions_pads_empty(self):
        plan = plan_shards({1: 10, 2: 20}, 5)
        assert plan.n_shards == 5
        assert sum(1 for group in plan.shards if group) <= 2
        assert plan.all_partitions == [1, 2]

    def test_deterministic(self):
        assert plan_shards(sizes(), 3) == plan_shards(sizes(), 3)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="n_shards"):
            plan_shards(sizes(), 0)
        with pytest.raises(ValueError, match="replication"):
            plan_shards(sizes(), 3, replication=3)
        with pytest.raises(ValueError, match="replication"):
            plan_shards(sizes(), 3, replication=-1)


class TestChainedReplicas:
    @pytest.fixture(scope="class")
    def plan(self):
        return plan_shards(sizes(), 4, replication=2)

    def test_hosts_owner_first_ring_order(self, plan):
        for pid in plan.all_partitions:
            hosts = plan.hosts_of(pid)
            owner = plan.owner_of(pid)
            assert hosts[0] == owner
            assert len(hosts) == plan.replication + 1
            assert len(set(hosts)) == len(hosts)
            assert hosts == [(owner + i) % 4 for i in range(3)]

    def test_hosted_is_primaries_plus_chained_copies(self, plan):
        for shard_id in range(plan.n_shards):
            hosted = set(plan.hosted(shard_id))
            expected = set(plan.shards[shard_id])
            for source in plan.replica_sources(shard_id):
                expected.update(plan.shards[source])
            assert hosted == expected

    def test_losing_one_shard_removes_one_host_per_partition(self, plan):
        # The failure-domain property chaining buys: any single shard
        # death costs every partition at most one replica.
        for dead in range(plan.n_shards):
            for pid in plan.all_partitions:
                hosts = plan.hosts_of(pid)
                assert sum(1 for h in hosts if h == dead) <= 1

    def test_replication_zero_means_owner_only(self):
        plan = plan_shards(sizes(), 3, replication=0)
        for pid in plan.all_partitions:
            assert plan.hosts_of(pid) == [plan.owner_of(pid)]
            assert plan.hosted(plan.owner_of(pid)).count(pid) == 1


class TestWireForm:
    def test_round_trip(self):
        plan = plan_shards(sizes(), 3, replication=1)
        doc = plan.to_dict()
        assert ShardPlan.from_dict(doc) == plan
        # JSON-safe: only ints and lists.
        import json

        assert ShardPlan.from_dict(json.loads(json.dumps(doc))) == plan

    def test_validation_on_load(self):
        with pytest.raises(ValueError, match="owned by two shards"):
            ShardPlan.from_dict(
                {"n_shards": 2, "replication": 0, "shards": [[1, 2], [2]]}
            )
        with pytest.raises(ValueError, match="expected"):
            ShardPlan.from_dict(
                {"n_shards": 3, "replication": 0, "shards": [[1], [2]]}
            )
