"""Spawned shard processes: the real topology, end to end.

One deliberately small cluster (spawn + per-shard index load is the
expensive part) proving the process path carries the same guarantees
the threads-mode suite pins exhaustively: bit-identical answers, and
replica failover across a genuine ``SIGKILL``.
"""

import numpy as np
import pytest

from repro.core import TardisConfig, build_tardis_index
from repro.core.persistence import save_index
from repro.core.queries import exact_match, knn_multi_partitions_access
from repro.serving import QueryRequest
from repro.sharding import RouterIndex, RouterService, ShardCluster
from repro.tsdb import random_walk


@pytest.fixture(scope="module")
def proc_dataset():
    return random_walk(900, length=48, seed=31).z_normalized()


@pytest.fixture(scope="module")
def proc_index(proc_dataset):
    return build_tardis_index(
        proc_dataset, TardisConfig(g_max_size=120, l_max_size=24, pth=4)
    )


@pytest.fixture(scope="module")
def index_dir(proc_index, tmp_path_factory):
    path = tmp_path_factory.mktemp("proc-shards") / "index"
    save_index(proc_index, path)
    return str(path)


def test_process_cluster_equivalence_and_sigkill_failover(
    proc_index, proc_dataset, index_dir
):
    from repro.sharding.assignment import plan_shards

    plan = plan_shards(
        {pid: p.n_records for pid, p in proc_index.partitions.items()},
        2, replication=1,
    )
    queries = random_walk(6, length=48, seed=32).z_normalized().values
    knn_refs = [
        knn_multi_partitions_access(proc_index, q, 10) for q in queries
    ]
    row = proc_dataset.values[5]
    exact_ref = exact_match(proc_index, row)

    with ShardCluster(
        plan, mode="processes", index_dir=index_dir,
        service_kwargs={"result_cache_size": None, "max_delay_ms": 1.0},
    ) as cluster:
        with RouterService(
            RouterIndex.from_index(proc_index), plan, cluster.addresses,
            result_cache_size=None, call_timeout_s=15.0,
            health_interval_s=0.0,
        ) as router:
            for q, want in zip(queries, knn_refs):
                got = router.query(QueryRequest(
                    q, op="knn", strategy="multi-partitions", k=10
                ), timeout=60)
                assert got.record_ids == want.record_ids
                assert got.distances == want.distances
                assert not got.degraded
            got_exact = router.query(
                QueryRequest(row, op="exact-match"), timeout=60
            )
            assert got_exact.record_ids == exact_ref.record_ids

            # SIGKILL one shard: R=1 keeps every partition served.
            cluster.kill_shard(0)
            assert not cluster.alive(0)
            for q, want in zip(queries, knn_refs):
                got = router.query(QueryRequest(
                    q, op="knn", strategy="multi-partitions", k=10
                ), timeout=60)
                assert got.record_ids == want.record_ids
                assert got.distances == want.distances
                assert not got.degraded
            report = router.stats()
    assert report["requests_degraded"] == 0
    assert report["requests_failed"] == 0


def test_process_cluster_produces_one_stitched_trace(
    proc_index, index_dir, tmp_path
):
    """Acceptance bar for the observability plane: 3 shards, R=1,
    processes backend — one kNN produces exactly one trace with the
    router's queue/scatter/gather segments and every shard's execute
    segment re-parented across the process boundary, orphan-free."""
    from repro.sharding.assignment import plan_shards
    from repro.telemetry import write_trace
    from repro.telemetry.spans import disable_tracing, enable_tracing
    from repro.telemetry.validate import main as validate_main

    plan = plan_shards(
        {pid: p.n_records for pid, p in proc_index.partitions.items()},
        3, replication=1,
    )
    query = random_walk(1, length=48, seed=33).z_normalized().values[0]
    tracer = enable_tracing()
    try:
        with ShardCluster(
            plan, mode="processes", index_dir=index_dir, tracing=True,
            service_kwargs={"result_cache_size": None, "max_delay_ms": 1.0},
        ) as cluster:
            with RouterService(
                RouterIndex.from_index(proc_index), plan, cluster.addresses,
                result_cache_size=None, call_timeout_s=15.0,
                health_interval_s=0.0,
            ) as router:
                result = router.query(QueryRequest(
                    query, op="knn", strategy="multi-partitions", k=10
                ), timeout=60)
                assert result.neighbors and not result.degraded
                telemetry_status = router.scrape_now()
        assert all(telemetry_status.values())

        roots = tracer.roots
        assert [r.name for r in roots] == ["serve/request"]
        doc = roots[0].to_dict()

        def walk(span, parent=None):
            yield span, parent
            for child in span.get("children", []):
                yield from walk(child, span)

        names = {s["name"] for s, _ in walk(doc)}
        for want in ("serve/queue-wait", "route/seed", "route/scatter",
                     "route/gather", "route/shard-call", "shard/request"):
            assert want in names, f"missing {want}"
        shard_ids = set()
        for span, parent in walk(doc):
            assert span["trace_id"] == doc["trace_id"]
            if span["name"] == "shard/request":
                assert parent["name"] == "route/shard-call"
                shard_ids.add(span["attributes"]["shard_id"])
        assert len(shard_ids) >= 2  # execute segments from 2+ processes

        path = tmp_path / "trace.json"
        write_trace(tracer, path)
        assert validate_main(
            ["--trace", str(path), "--expect-roots", "serve/request"]
        ) == 0
    finally:
        disable_tracing()


def test_dead_process_startup_is_a_typed_error(index_dir):
    """A shard that dies during startup surfaces a RuntimeError naming
    the shard, not a hang on the address pipe."""
    from repro.sharding.assignment import ShardPlan

    plan = ShardPlan(n_shards=1, replication=0, shards=((),))
    cluster = ShardCluster(
        plan, mode="processes", index_dir=index_dir + "-nonexistent",
    )
    with pytest.raises(RuntimeError, match="shard 0"):
        cluster.start()
