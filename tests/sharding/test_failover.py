"""Failure handling: replicas mask shard death, loss degrades soundly.

Two regimes, matching docs/ROBUSTNESS.md:

* **R >= 1, one shard dead** — every partition still has a live host;
  the router fails over and answers stay bit-identical with zero
  degraded results.  Failover may cost retries; it may never change
  answers.
* **R = 0, one shard dead** — partitions owned by the dead shard are
  simply gone.  kNN answers degrade exactly like single-process
  serving under partition loss: ``degraded=True``, the lost-and-needed
  partitions in ``missing_partitions``, and the neighbor list a
  provably-correct *prefix* of the baseline (region-synopsis bound).
  Degraded answers never enter the result cache; exact-match raises a
  typed :class:`PartialResultError`.
"""

import numpy as np
import pytest

from repro.core.queries import (
    exact_match,
    knn_multi_partitions_access,
    knn_target_node_access,
)
from repro.faults import PartialResultError
from repro.serving import QueryRequest


@pytest.fixture(scope="module")
def probes(rw_small, heldout_queries):
    return np.vstack([rw_small.values[:4], heldout_queries[:6]])


def _knn(router, series, strategy="multi-partitions", k=10):
    return router.query(
        QueryRequest(series, op="knn", strategy=strategy, k=k), timeout=60
    )


class TestReplicaFailover:
    @pytest.mark.parametrize("dead", (0, 1, 2))
    def test_answers_identical_after_shard_death(
        self, tardis_small, probes, router_factory, dead
    ):
        refs = [
            knn_multi_partitions_access(tardis_small, q, 10) for q in probes
        ]
        with router_factory(
            tardis_small, n_shards=3, replication=1, call_timeout_s=5.0
        ) as (router, cluster):
            cluster.kill_shard(dead)
            for q, want in zip(probes, refs):
                got = _knn(router, q)
                assert got.record_ids == want.record_ids
                assert got.distances == want.distances
                assert not got.degraded
            report = router.stats()
        assert report["requests_degraded"] == 0
        assert report["requests_failed"] == 0
        # The dead shard was actually tried: failover left fingerprints.
        assert any(
            s["shard_id"] == dead and not s["up"]
            for s in report["shards"]
        )

    def test_exact_match_fails_over(self, tardis_small, rw_small,
                                    router_factory):
        rows = rw_small.values[:6]
        refs = [exact_match(tardis_small, row) for row in rows]
        with router_factory(
            tardis_small, n_shards=3, replication=2, call_timeout_s=5.0
        ) as (router, cluster):
            cluster.kill_shard(1)
            cluster.kill_shard(2)  # R=2: still one live host each
            for row, want in zip(rows, refs):
                got = router.query(
                    QueryRequest(row, op="exact-match"), timeout=60
                )
                assert got.found
                assert got.record_ids == want.record_ids

    def test_health_check_marks_dead_shard_down(self, tardis_small,
                                                router_factory):
        with router_factory(
            tardis_small, n_shards=3, replication=1, call_timeout_s=5.0
        ) as (router, cluster):
            assert router.check_health() == {0: True, 1: True, 2: True}
            cluster.kill_shard(2)
            health = router.check_health()
        assert health[2] is False
        assert health[0] and health[1]


class TestUnreplicatedLoss:
    def _lost_setup(self, index, probes, router_factory):
        """Pick a dead shard that at least one probe actually needs."""
        refs = [knn_multi_partitions_access(index, q, 10) for q in probes]
        return refs

    @pytest.mark.parametrize("dead", (0, 1, 2))
    def test_knn_degrades_to_provable_prefix(
        self, tardis_small, probes, router_factory, dead
    ):
        refs = self._lost_setup(tardis_small, probes, router_factory)
        with router_factory(
            tardis_small, n_shards=3, replication=0, call_timeout_s=5.0
        ) as (router, cluster):
            lost = set(cluster.plan.shards[dead])
            cluster.kill_shard(dead)
            saw_degraded = False
            for q, want in zip(probes, refs):
                got = _knn(router, q)
                needed = sorted(lost & set(want.partition_ids_loaded))
                if not needed:
                    assert not got.degraded
                    assert got.record_ids == want.record_ids
                    assert got.distances == want.distances
                    continue
                saw_degraded = True
                assert got.degraded
                assert got.missing_partitions == needed
                # MINDIST truncation: the surviving neighbors are the
                # baseline answer's prefix, bit-for-bit.
                n = len(got.record_ids)
                assert n <= len(want.record_ids)
                assert got.record_ids == want.record_ids[:n]
                assert got.distances == want.distances[:n]
            assert saw_degraded, "no probe needed the dead shard"

    def test_degraded_answers_never_cached(self, tardis_small, probes,
                                           router_factory):
        with router_factory(
            tardis_small, n_shards=3, replication=0, call_timeout_s=5.0,
            result_cache_size=256,
        ) as (router, cluster):
            # Find a probe whose answer needs the dead shard.
            victim = None
            for q in probes:
                want = knn_multi_partitions_access(tardis_small, q, 10)
                if set(cluster.plan.shards[0]) & set(
                    want.partition_ids_loaded
                ):
                    victim = q
                    break
            assert victim is not None
            cluster.kill_shard(0)
            request = QueryRequest(
                victim, op="knn", strategy="multi-partitions", k=10
            )
            first = router.query(request, timeout=60)
            second = router.query(request, timeout=60)
            report = router.stats()
        assert first.degraded and second.degraded
        # Both executions recomputed: a degraded answer must never be
        # served back from the cache as if it were complete.
        assert report["result_cache_hits"] == 0
        assert report["requests_degraded"] == 2

    def test_exact_match_raises_typed_partial_result(
        self, tardis_small, rw_small, router_factory
    ):
        with router_factory(
            tardis_small, n_shards=3, replication=0, call_timeout_s=5.0
        ) as (router, cluster):
            # Find a row homed on shard 1.
            victim = home = None
            for row in rw_small.values[:20]:
                ref = exact_match(tardis_small, row)
                if ref.partition_ids_loaded[0] in cluster.plan.shards[1]:
                    victim, home = row, ref.partition_ids_loaded[0]
                    break
            assert victim is not None
            cluster.kill_shard(1)
            with pytest.raises(PartialResultError) as excinfo:
                router.query(QueryRequest(victim, op="exact-match"),
                             timeout=60)
        assert excinfo.value.missing_partitions == [home]

    def test_single_partition_strategy_degrades_empty(
        self, tardis_small, heldout_queries, router_factory
    ):
        query = heldout_queries[0]
        ref = knn_target_node_access(tardis_small, query, 5)
        [home] = ref.partition_ids_loaded
        with router_factory(
            tardis_small, n_shards=3, replication=0, call_timeout_s=5.0
        ) as (router, cluster):
            cluster.kill_shard(cluster.plan.owner_of(home))
            got = _knn(router, query, strategy="target-node", k=5)
        assert got.degraded
        assert got.missing_partitions == [home]
        assert got.record_ids == []


class TestShardMetrics:
    def test_per_shard_counters_and_gauges(self, tardis_small,
                                           heldout_queries,
                                           router_factory):
        from repro.telemetry.metrics import get_registry

        with router_factory(
            tardis_small, n_shards=2, replication=1, call_timeout_s=5.0
        ) as (router, cluster):
            _knn(router, heldout_queries[0])
            cluster.kill_shard(1)
            router.check_health()  # ping both: marks 1 down, 0 up
            _knn(router, heldout_queries[1])
            registry = get_registry()
            calls = registry.get("serving_shard_requests_total")
            up0 = registry.get("serving_shard_0_up")
            up1 = registry.get("serving_shard_1_up")
        assert calls is not None and calls.value >= 2
        assert up1 is not None and up1.value == 0.0
        assert up0 is not None and up0.value == 1.0
