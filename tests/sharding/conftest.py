"""Sharding-suite fixtures: thread-mode clusters over the shared index.

A threads-mode :class:`ShardCluster` plus :class:`RouterService` is the
workhorse here — real sockets, real wire protocol, real scatter/gather,
but no process spawns, so a cluster spins up in tens of milliseconds
and each test can build its own topology.  Health polling is disabled
(``health_interval_s=0``) so shard up/down state changes only when the
test makes it change.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest

from repro.faults import clear_injector
from repro.sharding import RouterIndex, RouterService, ShardCluster


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Never let one test's fault plan bleed into the next."""
    clear_injector()
    yield
    clear_injector()


@pytest.fixture(scope="session")
def router_factory():
    """Factory: ``with make_router(index, n_shards=3) as (router, cluster)``.

    The router is started, cache-disabled by default (execution
    comparisons, not memoization), and torn down with the cluster.
    """

    @contextmanager
    def make_router(index, n_shards=3, replication=0, *,
                    service_kwargs=None, **router_kwargs):
        kwargs = dict(service_kwargs or {})
        kwargs.setdefault("result_cache_size", None)
        kwargs.setdefault("max_delay_ms", 1.0)
        router_kwargs.setdefault("result_cache_size", None)
        router_kwargs.setdefault("health_interval_s", 0.0)
        with ShardCluster.for_index(
            index, n_shards, replication,
            mode="threads", service_kwargs=kwargs,
        ) as cluster:
            router = RouterService(
                RouterIndex.from_index(index), cluster.plan,
                cluster.addresses, **router_kwargs,
            )
            with router:
                yield router, cluster

    return make_router
