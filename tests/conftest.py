"""Shared fixtures: small datasets and pre-built indices.

Index builds are session-scoped — they are deterministic and read-only for
every test that uses them, and rebuilding per test would dominate suite
runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline import DpisaxConfig, build_dpisax_index
from repro.core import TardisConfig, build_tardis_index
from repro.tsdb import random_walk


SMALL_N = 3000
SMALL_LENGTH = 64


@pytest.fixture(scope="session")
def small_config() -> TardisConfig:
    return TardisConfig(g_max_size=300, l_max_size=30, pth=4)


@pytest.fixture(scope="session")
def small_baseline_config() -> DpisaxConfig:
    return DpisaxConfig(g_max_size=300, l_max_size=30)


@pytest.fixture(scope="session")
def rw_small():
    """3000 z-normalized random-walk series of length 64."""
    return random_walk(SMALL_N, length=SMALL_LENGTH, seed=42).z_normalized()


@pytest.fixture(scope="session")
def heldout_queries() -> np.ndarray:
    """Query series from the same distribution, not in ``rw_small``."""
    return random_walk(40, length=SMALL_LENGTH, seed=999).z_normalized().values


@pytest.fixture(scope="session")
def tardis_small(rw_small, small_config):
    return build_tardis_index(rw_small, small_config)


@pytest.fixture(scope="session")
def dpisax_small(rw_small, small_baseline_config):
    return build_dpisax_index(rw_small, small_baseline_config)
