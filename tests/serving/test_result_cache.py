"""Result cache keying and coherence.

The regression this file pins down: identical query series issued with
different ``(strategy, k, pth)`` — or a different op — are *different
work* and must never share a cache entry or a batch group.  A stale
cross-strategy hit would silently return target-node answers to a
multi-partitions caller.
"""

import numpy as np
import pytest

from repro.core import build_tardis_index, TardisConfig
from repro.core.queries import knn_one_partition_access
from repro.serving import QueryRequest, QueryService, ResultCache
from repro.serving.batcher import group_tickets
from repro.serving.service import Ticket
from repro.tsdb import random_walk


@pytest.fixture(scope="module")
def tiny_index():
    dataset = random_walk(600, length=32, seed=21).z_normalized()
    return build_tardis_index(
        dataset, TardisConfig(g_max_size=100, l_max_size=20, pth=3)
    )


@pytest.fixture(scope="module")
def tiny_dataset():
    return random_walk(600, length=32, seed=21).z_normalized()


class TestRequestKeys:
    def test_same_series_different_plans_distinct(self):
        series = np.linspace(-1.0, 1.0, 32)
        base = QueryRequest(series, op="knn", strategy="target-node", k=5)
        variants = [
            QueryRequest(series, op="knn", strategy="one-partition", k=5),
            QueryRequest(series, op="knn", strategy="target-node", k=7),
            QueryRequest(series, op="knn", strategy="multi-partitions",
                         k=5, pth=2),
            QueryRequest(series, op="knn", strategy="multi-partitions",
                         k=5, pth=3),
            QueryRequest(series, op="exact-match"),
            QueryRequest(series, op="exact-match", use_bloom=False),
        ]
        keys = {v.cache_key() for v in variants}
        assert len(keys) == len(variants)
        assert base.cache_key() not in keys

    def test_same_plan_same_series_equal_key(self):
        series = np.linspace(-1.0, 1.0, 32)
        a = QueryRequest(series.copy(), op="knn", strategy="target-node", k=5)
        b = QueryRequest(series.copy(), op="knn", strategy="target-node", k=5)
        assert a.cache_key() == b.cache_key()

    def test_different_series_distinct_key(self):
        a = QueryRequest(np.linspace(-1, 1, 32), op="exact-match")
        b = QueryRequest(np.linspace(-1, 1.01, 32), op="exact-match")
        assert a.cache_key() != b.cache_key()

    def test_pth_ignored_for_non_mpa(self):
        # pth only participates in the plan for multi-partitions access.
        series = np.linspace(-1.0, 1.0, 32)
        a = QueryRequest(series, op="knn", strategy="target-node", k=5,
                         pth=2)
        b = QueryRequest(series, op="knn", strategy="target-node", k=5,
                         pth=3)
        assert a.cache_key() == b.cache_key()

    def test_invalid_requests_rejected(self):
        series = np.zeros(16)
        with pytest.raises(ValueError):
            QueryRequest(series, op="scan")
        with pytest.raises(ValueError):
            QueryRequest(series, op="knn", strategy="psychic")
        with pytest.raises(ValueError):
            QueryRequest(series, op="knn", k=0)
        with pytest.raises(ValueError):
            QueryRequest(np.zeros((4, 4)))


class TestBatchGroupingSeparation:
    def test_identical_series_different_plans_never_share_group(
        self, tiny_index, tiny_dataset
    ):
        from concurrent.futures import Future

        series = tiny_dataset.values[0]
        tickets = [
            Ticket(QueryRequest(series, op="knn", strategy="target-node",
                                k=5), Future(), 0.0),
            Ticket(QueryRequest(series, op="knn", strategy="one-partition",
                                k=5), Future(), 0.0),
            Ticket(QueryRequest(series, op="knn", strategy="target-node",
                                k=9), Future(), 0.0),
            Ticket(QueryRequest(series, op="exact-match"), Future(), 0.0),
        ]
        groups = group_tickets(tiny_index, tickets)
        assert len(groups) == 4  # same home partition, four plans
        assert len({g.plan_key for g in groups}) == 4

    def test_same_plan_same_partition_shares_group(
        self, tiny_index, tiny_dataset
    ):
        from concurrent.futures import Future

        series = tiny_dataset.values[0]
        tickets = [
            Ticket(QueryRequest(series, op="knn", strategy="target-node",
                                k=5), Future(), 0.0)
            for _ in range(4)
        ]
        groups = group_tickets(tiny_index, tickets)
        assert len(groups) == 1
        assert groups[0].size == 4


class TestResultCacheUnit:
    def test_lru_eviction(self):
        cache = ResultCache(2)
        cache.put("a", 1, [0])
        cache.put("b", 2, [0])
        cache.put("c", 3, [1])  # evicts a
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_partition_invalidation_drops_only_dependents(self):
        cache = ResultCache(8)
        cache.put("a", 1, [0, 1])
        cache.put("b", 2, [1])
        cache.put("c", 3, [2])
        assert cache.invalidate_partition(1) == 2
        assert cache.get("a") is None
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.invalidations == 2

    def test_stats_shape(self):
        cache = ResultCache(4)
        cache.put("k", "v", [3])
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["hit_rate"] == 0.5


class TestNoStaleCrossStrategyHits:
    def test_cross_strategy_queries_get_their_own_answers(self, tiny_index):
        series = random_walk(1, length=32, seed=77).z_normalized().values[0]
        with QueryService(tiny_index, max_batch=4, max_delay_ms=1.0,
                          executor="serial") as service:
            first = service.query(
                QueryRequest(series, op="knn", strategy="target-node", k=5)
            )
            # Same series, different strategy: must execute, not hit.
            second = service.query(
                QueryRequest(series, op="knn", strategy="one-partition", k=5)
            )
            third = service.query(
                QueryRequest(series, op="knn", strategy="target-node", k=5)
            )
            stats = service.stats()["result_cache"]
        assert first.strategy == "target-node"
        assert second.strategy == "one-partition"
        reference = knn_one_partition_access(tiny_index, series, 5)
        assert second.record_ids == reference.record_ids
        assert second.distances == reference.distances
        # Exactly one hit: the repeated (series, plan) pair — never the
        # cross-strategy pair.
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert third.record_ids == first.record_ids

    def test_cached_repeat_is_identical_object_level(self, tiny_index):
        series = random_walk(1, length=32, seed=88).z_normalized().values[0]
        request = QueryRequest(series, op="knn", strategy="target-node", k=3)
        with QueryService(tiny_index, max_batch=2, max_delay_ms=1.0,
                          executor="serial") as service:
            first = service.query(request)
            again = service.query(
                QueryRequest(series, op="knn", strategy="target-node", k=3)
            )
        assert again.record_ids == first.record_ids
        assert again.distances == first.distances


class TestInvalidationCoupling:
    def test_insert_series_invalidates_cached_answers(self):
        dataset = random_walk(400, length=32, seed=31).z_normalized()
        index = build_tardis_index(
            dataset, TardisConfig(g_max_size=80, l_max_size=16, pth=3)
        )
        probe = dataset.values[5]
        with QueryService(index, max_batch=2, max_delay_ms=1.0,
                          executor="serial",
                          partition_cache_size=4) as service:
            before = service.query(
                QueryRequest(probe, op="exact-match")
            )
            assert before.record_ids == [5]
            # Inserting a duplicate of the probe mutates its home
            # partition; the partition-cache invalidation must cascade
            # into the result cache so the next ask re-executes.
            new_id = index.insert_series(probe)
            after = service.query(QueryRequest(probe, op="exact-match"))
            stats = service.stats()["result_cache"]
        assert stats["invalidations"] >= 1
        assert stats["hits"] == 0  # the stale entry was dropped
        assert sorted(after.record_ids) == sorted([5, new_id])

    def test_bloom_rejected_negative_invalidated_by_insert(self):
        # Regression: a bloom-rejected exact match loads no partition, so
        # its cached "not found" used to be indexed under no partition and
        # survived the insert's invalidation forever.  It must be indexed
        # under the routed home partition instead.
        dataset = random_walk(400, length=32, seed=31).z_normalized()
        index = build_tardis_index(
            dataset, TardisConfig(g_max_size=80, l_max_size=16, pth=3)
        )
        absent = random_walk(1, length=32, seed=999).z_normalized().values[0]
        with QueryService(index, max_batch=2, max_delay_ms=1.0,
                          executor="serial",
                          partition_cache_size=4) as service:
            before = service.query(QueryRequest(absent, op="exact-match"))
            assert before.bloom_rejected
            assert not before.found
            # The negative answer is now cached; inserting the series
            # updates its home partition's bloom filter and must drop the
            # stale negative through the invalidation coupling.
            new_id = index.insert_series(absent)
            after = service.query(QueryRequest(absent, op="exact-match"))
            stats = service.stats()["result_cache"]
        assert stats["invalidations"] >= 1
        assert not after.bloom_rejected
        assert after.record_ids == [new_id]
