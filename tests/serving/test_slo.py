"""SLO tracker: percentile math, report shape, telemetry publication."""

import numpy as np
import pytest

from repro.serving.slo import SLOTracker, nearest_rank
from repro.telemetry.metrics import get_registry


class TestNearestRank:
    def test_matches_definition(self):
        samples = sorted(float(v) for v in range(1, 101))  # 1..100
        assert nearest_rank(samples, 0.50) == 50.0
        assert nearest_rank(samples, 0.95) == 95.0
        assert nearest_rank(samples, 0.99) == 99.0
        assert nearest_rank(samples, 1.0) == 100.0

    def test_small_samples(self):
        assert nearest_rank([], 0.5) == 0.0
        assert nearest_rank([7.0], 0.99) == 7.0
        assert nearest_rank([1.0, 2.0], 0.5) == 1.0

    def test_matches_numpy_higher_interpolation_families(self):
        rng = np.random.default_rng(0)
        samples = sorted(rng.exponential(1.0, size=997).tolist())
        for quantile in (0.5, 0.9, 0.95, 0.99):
            ours = nearest_rank(samples, quantile)
            # nearest-rank picks an actual sample >= the interpolated
            # 'lower' estimate and <= the 'higher' one.
            low = np.quantile(samples, quantile, method="lower")
            high = np.quantile(samples, quantile, method="higher")
            assert low <= ours <= high

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)


class TestTrackerReport:
    def test_percentiles_over_recorded_latencies(self):
        # Percentiles are now histogram estimates (log buckets, 5 per
        # decade → bucket edges 10^0.2 ≈ 1.585x apart), so assert to
        # within one bucket's relative width instead of exactly.
        tracker = SLOTracker()
        for ms in range(1, 101):  # 1ms .. 100ms
            tracker.record_completed(ms / 1000.0)
        latency = tracker.report()["latency"]
        assert latency["p50_s"] == pytest.approx(0.050, rel=0.6)
        assert latency["p95_s"] == pytest.approx(0.095, rel=0.6)
        assert latency["p99_s"] == pytest.approx(0.099, rel=0.6)
        assert latency["p50_s"] <= latency["p95_s"] <= latency["p99_s"]
        assert latency["samples"] == 100

    def test_report_counts(self):
        tracker = SLOTracker()
        tracker.record_admitted(queue_depth=3)
        tracker.record_admitted(queue_depth=7)
        tracker.record_completed(0.01)
        tracker.record_completed(0.0, cached=True)
        tracker.record_completed(0.02, failed=True)
        tracker.record_shed()
        tracker.record_batch(n_queries=8, n_groups=2, partitions_loaded=2)
        report = tracker.report(queue_depth=1)
        assert report["requests_admitted"] == 2
        assert report["requests_completed"] == 2
        assert report["requests_failed"] == 1
        assert report["requests_shed"] == 1
        assert report["queue_depth"] == 1
        assert report["max_queue_depth"] == 7
        assert report["batch_occupancy_mean"] == 4.0
        # The failed request stays out of the hit/miss ledger: one hit,
        # one miss from the two successful completions.
        assert report["result_cache_hits"] == 1
        assert report["result_cache_misses"] == 1
        assert report["result_cache_hit_rate"] == pytest.approx(0.5)
        # 2 loads over 1 executed (successful, non-cached) request.
        assert report["partitions_per_query"] == pytest.approx(2.0)

    def test_failed_completions_do_not_skew_cache_accounting(self):
        tracker = SLOTracker()
        tracker.record_completed(0.01)               # miss
        tracker.record_completed(0.0, cached=True)   # hit
        for _ in range(10):
            tracker.record_completed(0.02, failed=True)
        report = tracker.report()
        assert report["requests_failed"] == 10
        assert report["result_cache_misses"] == 1
        assert report["result_cache_hit_rate"] == pytest.approx(0.5)
        assert report["latency"]["samples"] == 2

    def test_latency_state_is_per_tracker(self):
        # Each tracker's percentile histogram is private: a second
        # tracker starts empty even though both publish to the shared
        # registry's serving_latency_seconds.
        first = SLOTracker()
        for _ in range(50):
            first.record_completed(0.01)
        second = SLOTracker()
        assert second.report()["latency"]["samples"] == 0
        assert first.report()["latency"]["samples"] == 50

    def test_record_batch_accepts_partition_ids(self):
        tracker = SLOTracker()
        tracker.record_batch(n_queries=4, n_groups=2,
                             partitions_loaded=[3, 3, 7])
        tracker.record_batch(n_queries=2, n_groups=1,
                             partitions_loaded=[3])
        report = tracker.report()
        assert report["partition_loads"] == 4
        skew = report["partition_skew"]
        assert skew["partitions_touched"] == 2
        assert skew["max_loads"] == 3
        assert skew["hottest"][0] == {"partition_id": 3, "loads": 3}
        # 4 loads over 2 partitions → mean 2; hottest has 3 → skew 1.5
        assert skew["skew"] == pytest.approx(1.5)

    def test_record_batch_accepts_bare_count(self):
        tracker = SLOTracker()
        tracker.record_batch(n_queries=4, n_groups=2, partitions_loaded=2)
        report = tracker.report()
        assert report["partition_loads"] == 2
        assert report["partition_skew"]["partitions_touched"] == 0


class TestDeadlineAndDegradedAccounting:
    def test_deadline_sheds_counted_apart_from_capacity_sheds(self):
        tracker = SLOTracker()
        tracker.record_shed()
        tracker.record_deadline_shed()
        tracker.record_deadline_shed()
        report = tracker.report()
        assert report["requests_shed"] == 1
        assert report["requests_deadline_shed"] == 2
        assert report["requests_failed"] == 0
        assert report["requests_completed"] == 0
        # Deadline sheds never reach the latency histogram.
        assert report["latency"]["samples"] == 0

    def test_degraded_completions_counted_as_completed(self):
        tracker = SLOTracker()
        tracker.record_completed(0.01)
        tracker.record_completed(0.02, degraded=True)
        report = tracker.report()
        assert report["requests_completed"] == 2
        assert report["requests_degraded"] == 1
        assert report["requests_failed"] == 0
        assert report["latency"]["samples"] == 2

    def test_failed_requests_never_count_degraded(self):
        tracker = SLOTracker()
        tracker.record_completed(0.02, failed=True, degraded=True)
        report = tracker.report()
        assert report["requests_failed"] == 1
        assert report["requests_degraded"] == 0

    def test_deadline_and_degraded_metrics_registered(self):
        registry = get_registry()
        tracker = SLOTracker()
        tracker.record_deadline_shed()
        tracker.record_completed(0.01, degraded=True)
        assert registry.get("serving_deadline_shed_total").value >= 1
        assert registry.get("serving_degraded_total").value >= 1


class TestTelemetryPublication:
    def test_serving_metrics_registered(self):
        registry = get_registry()
        tracker = SLOTracker()
        tracker.record_admitted(queue_depth=2)
        tracker.record_completed(0.005)
        tracker.record_shed()
        tracker.record_batch(n_queries=4, n_groups=2, partitions_loaded=2)
        for name in (
            "serving_requests_total",
            "serving_queue_depth",
            "serving_shed_total",
            "serving_latency_seconds",
            "serving_result_cache_misses_total",
            "serving_batches_total",
            "serving_partition_loads_total",
            "serving_batch_occupancy",
        ):
            assert registry.get(name) is not None, name
        assert registry.get("serving_queue_depth").value == 2
        assert registry.get("serving_latency_seconds").count >= 1
