"""Admission queue and deadline budget: backpressure, batching, shedding."""

import threading
import time

import numpy as np
import pytest

from repro.serving.admission import (
    AdmissionQueue,
    DeadlineExceededError,
    OverloadedError,
)


class TestPut:
    def test_fifo_order(self):
        queue = AdmissionQueue(8)
        for i in range(5):
            queue.put(i)
        assert queue.take_batch(8, 0.0) == [0, 1, 2, 3, 4]

    def test_shed_raises_structured_error(self):
        queue = AdmissionQueue(2, policy="shed")
        queue.put("a")
        queue.put("b")
        with pytest.raises(OverloadedError) as excinfo:
            queue.put("c")
        assert excinfo.value.depth == 2
        assert excinfo.value.capacity == 2
        assert "shed" in str(excinfo.value)

    def test_block_waits_for_space(self):
        queue = AdmissionQueue(1, policy="block")
        queue.put("first")
        admitted = threading.Event()

        def producer():
            queue.put("second")  # blocks until the consumer takes
            admitted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not admitted.wait(0.05)  # still blocked: queue full
        assert queue.take_batch(1, 0.0) == ["first"]
        assert admitted.wait(2.0)
        thread.join(2.0)
        assert queue.take_batch(1, 0.0) == ["second"]

    def test_block_with_timeout_sheds(self):
        queue = AdmissionQueue(1, policy="block")
        queue.put("only")
        with pytest.raises(OverloadedError):
            queue.put("late", timeout=0.05)

    def test_put_after_close_rejected(self):
        queue = AdmissionQueue(4)
        queue.close()
        with pytest.raises(RuntimeError):
            queue.put("x")

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)
        with pytest.raises(ValueError):
            AdmissionQueue(4, policy="panic")


class TestTakeBatch:
    def test_respects_max_batch(self):
        queue = AdmissionQueue(16)
        for i in range(10):
            queue.put(i)
        assert queue.take_batch(4, 0.0) == [0, 1, 2, 3]
        assert queue.take_batch(4, 0.0) == [4, 5, 6, 7]

    def test_flush_timer_bounds_wait(self):
        queue = AdmissionQueue(16)
        queue.put("lonely")
        start = time.monotonic()
        batch = queue.take_batch(8, 0.05)
        elapsed = time.monotonic() - start
        assert batch == ["lonely"]
        assert elapsed < 1.0  # returned at the timer, not forever

    def test_collects_arrivals_within_window(self):
        queue = AdmissionQueue(16)
        queue.put("early")

        def late_producer():
            time.sleep(0.02)
            queue.put("late")

        thread = threading.Thread(target=late_producer, daemon=True)
        thread.start()
        batch = queue.take_batch(8, 0.5)
        thread.join(2.0)
        assert batch == ["early", "late"]

    def test_blocks_until_first_item(self):
        queue = AdmissionQueue(4)
        result: list = []

        def consumer():
            result.extend(queue.take_batch(4, 0.01))

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert result == []  # still waiting for the first item
        queue.put("now")
        thread.join(2.0)
        assert result == ["now"]


class TestDeadlineBudget:
    """Per-request deadline: queue wait counts, expired work is cancelled
    at dequeue — before grouping or execution — and counted apart from
    capacity sheds and failures."""

    def _service(self, index, **kwargs):
        from repro.serving.service import QueryService
        from repro.telemetry.journal import EventJournal

        kwargs.setdefault("max_batch", 8)
        kwargs.setdefault("result_cache_size", 0)
        kwargs.setdefault("journal", EventJournal())
        return QueryService(index, **kwargs)

    def test_error_carries_waited_and_deadline(self):
        error = DeadlineExceededError(waited_s=0.05, deadline_s=0.01)
        assert error.waited_s == 0.05
        assert error.deadline_s == 0.01
        assert "10.0ms" in str(error)
        assert "50.0ms" in str(error)

    def test_expired_request_shed_never_executed(
        self, tardis_small, heldout_queries
    ):
        from repro.serving.requests import QueryRequest

        # A 10 µs budget against a 40 ms flush window: the deadline is
        # long gone when the batcher dequeues.
        svc = self._service(tardis_small, max_delay_ms=40.0)
        with svc:
            future = svc.submit(QueryRequest(
                heldout_queries[0], op="knn", strategy="target-node", k=5,
                deadline_ms=0.01,
            ))
            with pytest.raises(DeadlineExceededError) as excinfo:
                future.result(timeout=30.0)
        assert excinfo.value.waited_s >= excinfo.value.deadline_s
        report = svc.stats()
        assert report["requests_deadline_shed"] == 1
        assert report["requests_shed"] == 0
        assert report["requests_failed"] == 0
        assert report["requests_completed"] == 0
        # Never grouped, never executed: no batch ran, nothing loaded.
        assert report["batches"] == 0
        assert report["partition_loads"] == 0
        kinds = svc.journal.stats()["by_kind"]
        assert kinds.get("deadline") == 1

    def test_live_siblings_survive_an_expired_ticket(
        self, tardis_small, heldout_queries
    ):
        from repro.core import knn_target_node_access
        from repro.serving.requests import QueryRequest

        ref = knn_target_node_access(tardis_small, heldout_queries[1], 5)
        svc = self._service(tardis_small, max_delay_ms=40.0)
        with svc:
            doomed = svc.submit(QueryRequest(
                heldout_queries[0], op="knn", strategy="target-node", k=5,
                deadline_ms=0.01,
            ))
            live = svc.submit(QueryRequest(
                heldout_queries[1], op="knn", strategy="target-node", k=5,
            ))
            result = live.result(timeout=30.0)
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30.0)
        assert result.record_ids == ref.record_ids
        report = svc.stats()
        assert report["requests_completed"] == 1
        assert report["requests_deadline_shed"] == 1
        # Batch accounting sees only the live ticket.
        assert report["batch_occupancy_mean"] == pytest.approx(1.0)

    def test_generous_deadline_executes_normally(
        self, tardis_small, heldout_queries
    ):
        from repro.serving.requests import QueryRequest

        svc = self._service(tardis_small, max_delay_ms=1.0)
        with svc:
            result = svc.query(QueryRequest(
                heldout_queries[2], op="knn", strategy="target-node", k=5,
                deadline_ms=60_000.0,
            ), timeout=30.0)
        assert result.record_ids
        report = svc.stats()
        assert report["requests_deadline_shed"] == 0
        assert report["requests_completed"] == 1

    def test_service_default_deadline_applies(
        self, tardis_small, heldout_queries
    ):
        from repro.serving.requests import QueryRequest

        svc = self._service(
            tardis_small, max_delay_ms=40.0, default_deadline_ms=0.01
        )
        with svc:
            # No per-request deadline: the service default sheds it.
            doomed = svc.submit(QueryRequest(
                heldout_queries[3], op="knn", strategy="target-node", k=5,
            ))
            # An explicit generous budget overrides the default.
            live = svc.submit(QueryRequest(
                heldout_queries[4], op="knn", strategy="target-node", k=5,
                deadline_ms=60_000.0,
            ))
            assert live.result(timeout=30.0).record_ids
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30.0)
        assert svc.stats()["config"]["default_deadline_ms"] == \
            pytest.approx(0.01)

    def test_deadline_not_part_of_cache_identity(self, heldout_queries):
        from repro.serving.requests import QueryRequest

        with_deadline = QueryRequest(
            heldout_queries[0], op="knn", strategy="target-node", k=5,
            deadline_ms=100.0,
        )
        without = QueryRequest(
            heldout_queries[0], op="knn", strategy="target-node", k=5,
        )
        assert with_deadline.cache_key() == without.cache_key()
        assert with_deadline.plan_key() == without.plan_key()

    def test_invalid_deadline_rejected(self, heldout_queries):
        from repro.serving.requests import QueryRequest

        with pytest.raises(ValueError, match="deadline_ms"):
            QueryRequest(heldout_queries[0], deadline_ms=0.0)
        with pytest.raises(ValueError, match="deadline_ms"):
            QueryRequest(heldout_queries[0], deadline_ms=-5.0)

    def test_deadline_error_crosses_the_wire(
        self, tardis_small, heldout_queries
    ):
        from repro.serving.server import ServingClient, TardisServer

        svc = self._service(tardis_small, max_delay_ms=40.0)
        with TardisServer(svc) as server:
            host, port = server.address
            with ServingClient(host, port, timeout=10.0) as client:
                with pytest.raises(DeadlineExceededError) as excinfo:
                    client.knn(
                        np.asarray(heldout_queries[0]), k=5,
                        strategy="target-node", deadline_ms=0.01,
                    )
        assert excinfo.value.deadline_s == pytest.approx(1e-5)
        assert excinfo.value.waited_s >= excinfo.value.deadline_s


class TestDrain:
    def test_close_lets_consumer_drain(self):
        queue = AdmissionQueue(8)
        for i in range(6):
            queue.put(i)
        queue.close()
        drained = []
        while True:
            batch = queue.take_batch(4, 0.0)
            if not batch:
                break
            drained.extend(batch)
        assert drained == list(range(6))

    def test_take_batch_returns_empty_after_close(self):
        queue = AdmissionQueue(4)
        queue.close()
        assert queue.take_batch(4, 0.0) == []

    def test_close_wakes_blocked_consumer(self):
        queue = AdmissionQueue(4)
        done = threading.Event()
        batches: list = []

        def consumer():
            batches.append(queue.take_batch(4, 1.0))
            done.set()

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        assert done.wait(2.0)
        thread.join(2.0)
        assert batches == [[]]
