"""Admission queue: backpressure policies, batching takes, drain."""

import threading
import time

import pytest

from repro.serving.admission import AdmissionQueue, OverloadedError


class TestPut:
    def test_fifo_order(self):
        queue = AdmissionQueue(8)
        for i in range(5):
            queue.put(i)
        assert queue.take_batch(8, 0.0) == [0, 1, 2, 3, 4]

    def test_shed_raises_structured_error(self):
        queue = AdmissionQueue(2, policy="shed")
        queue.put("a")
        queue.put("b")
        with pytest.raises(OverloadedError) as excinfo:
            queue.put("c")
        assert excinfo.value.depth == 2
        assert excinfo.value.capacity == 2
        assert "shed" in str(excinfo.value)

    def test_block_waits_for_space(self):
        queue = AdmissionQueue(1, policy="block")
        queue.put("first")
        admitted = threading.Event()

        def producer():
            queue.put("second")  # blocks until the consumer takes
            admitted.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not admitted.wait(0.05)  # still blocked: queue full
        assert queue.take_batch(1, 0.0) == ["first"]
        assert admitted.wait(2.0)
        thread.join(2.0)
        assert queue.take_batch(1, 0.0) == ["second"]

    def test_block_with_timeout_sheds(self):
        queue = AdmissionQueue(1, policy="block")
        queue.put("only")
        with pytest.raises(OverloadedError):
            queue.put("late", timeout=0.05)

    def test_put_after_close_rejected(self):
        queue = AdmissionQueue(4)
        queue.close()
        with pytest.raises(RuntimeError):
            queue.put("x")

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)
        with pytest.raises(ValueError):
            AdmissionQueue(4, policy="panic")


class TestTakeBatch:
    def test_respects_max_batch(self):
        queue = AdmissionQueue(16)
        for i in range(10):
            queue.put(i)
        assert queue.take_batch(4, 0.0) == [0, 1, 2, 3]
        assert queue.take_batch(4, 0.0) == [4, 5, 6, 7]

    def test_flush_timer_bounds_wait(self):
        queue = AdmissionQueue(16)
        queue.put("lonely")
        start = time.monotonic()
        batch = queue.take_batch(8, 0.05)
        elapsed = time.monotonic() - start
        assert batch == ["lonely"]
        assert elapsed < 1.0  # returned at the timer, not forever

    def test_collects_arrivals_within_window(self):
        queue = AdmissionQueue(16)
        queue.put("early")

        def late_producer():
            time.sleep(0.02)
            queue.put("late")

        thread = threading.Thread(target=late_producer, daemon=True)
        thread.start()
        batch = queue.take_batch(8, 0.5)
        thread.join(2.0)
        assert batch == ["early", "late"]

    def test_blocks_until_first_item(self):
        queue = AdmissionQueue(4)
        result: list = []

        def consumer():
            result.extend(queue.take_batch(4, 0.01))

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert result == []  # still waiting for the first item
        queue.put("now")
        thread.join(2.0)
        assert result == ["now"]


class TestDrain:
    def test_close_lets_consumer_drain(self):
        queue = AdmissionQueue(8)
        for i in range(6):
            queue.put(i)
        queue.close()
        drained = []
        while True:
            batch = queue.take_batch(4, 0.0)
            if not batch:
                break
            drained.extend(batch)
        assert drained == list(range(6))

    def test_take_batch_returns_empty_after_close(self):
        queue = AdmissionQueue(4)
        queue.close()
        assert queue.take_batch(4, 0.0) == []

    def test_close_wakes_blocked_consumer(self):
        queue = AdmissionQueue(4)
        done = threading.Event()
        batches: list = []

        def consumer():
            batches.append(queue.take_batch(4, 1.0))
            done.set()

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        assert done.wait(2.0)
        thread.join(2.0)
        assert batches == [[]]
