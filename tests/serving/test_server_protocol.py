"""Wire-protocol hygiene: version stamps, unknown fields, timeouts,
and graceful drain under in-flight load.

These pin the version-skew contract a mixed-version cluster (old
shards, new router — or vice versa) depends on: every reply carries
``proto``, every parser ignores fields it does not know, and a socket
timeout surfaces as its own typed error, distinct from a server-side
deadline.
"""

import json
import socket
import threading
import time

import pytest

from repro.serving import (
    QueryRequest,
    QueryService,
    ServingClient,
    TardisServer,
    serve,
)
from repro.serving.server import PROTO_VERSION, RequestTimeoutError


@pytest.fixture()
def running_server(tardis_small):
    server = serve(tardis_small, port=0, max_batch=4, max_delay_ms=1.0)
    server.start()
    yield server
    server.close()


def _raw_call(address, payload: bytes) -> dict:
    with socket.create_connection(address, timeout=10) as sock:
        handle = sock.makefile("rwb")
        handle.write(payload + b"\n")
        handle.flush()
        return json.loads(handle.readline())


class TestProtoStamp:
    def test_every_reply_kind_carries_proto(self, running_server, rw_small):
        address = running_server.address
        docs = [
            {"op": "ping"},
            {"op": "stats"},
            {"op": "knn", "series": rw_small.values[0].tolist(), "k": 3},
            {"op": "nonsense"},                      # error reply
            {"op": "knn"},                           # bad-request reply
        ]
        for doc in docs:
            reply = _raw_call(address, json.dumps(doc).encode())
            assert reply["proto"] == PROTO_VERSION, doc

    def test_malformed_json_reply_still_versioned(self, running_server):
        reply = _raw_call(running_server.address, b"{broken")
        assert reply["ok"] is False
        assert reply["proto"] == PROTO_VERSION


class TestUnknownFieldTolerance:
    def test_unknown_request_fields_are_ignored(self, running_server,
                                                rw_small):
        """A newer client sending fields this server has never heard of
        still gets its query answered — the forward-compat half of the
        version-skew contract."""
        reply = _raw_call(running_server.address, json.dumps({
            "op": "knn",
            "series": rw_small.values[0].tolist(),
            "k": 3,
            "from_the_future": {"nested": [1, 2, 3]},
            "priority": "urgent",
            "proto": 99,
        }).encode())
        assert reply["ok"] is True
        assert len(reply["result"]["record_ids"]) == 3

    def test_unknown_fields_ignored_on_every_op(self, running_server):
        for op in ("ping", "stats"):
            reply = _raw_call(running_server.address, json.dumps(
                {"op": op, "shiny": True}
            ).encode())
            assert reply["ok"] is True


class TestSocketTimeout:
    def test_silent_server_raises_typed_timeout(self):
        """A server that accepts but never replies must surface as
        RequestTimeoutError (with the budget attached), not a bare
        socket.timeout or a hang."""
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(10.0)
        accepted = []

        def accept_and_stall():
            try:
                conn, _addr = listener.accept()
                accepted.append(conn)  # hold it open, never reply
            except OSError:
                pass

        thread = threading.Thread(target=accept_and_stall, daemon=True)
        thread.start()
        host, port = listener.getsockname()
        try:
            with ServingClient(host, port, timeout=0.2) as client:
                with pytest.raises(RequestTimeoutError) as excinfo:
                    client.ping()
            assert excinfo.value.timeout_s == 0.2
        finally:
            listener.close()
            for conn in accepted:
                conn.close()

    def test_wire_timeout_error_kind_maps_to_typed_error(self):
        """The sharded router reports an exhausted upstream budget as a
        ``timeout`` wire error; the client must rehydrate the same
        typed exception, keeping it distinct from ``deadline``."""
        listener = socket.create_server(("127.0.0.1", 0))

        def answer_with_timeout_error():
            conn, _addr = listener.accept()
            handle = conn.makefile("rwb")
            handle.readline()
            handle.write(json.dumps({
                "ok": False, "proto": PROTO_VERSION,
                "error": {"type": "timeout", "message": "shard call: "
                          "no reply within 1.5s", "timeout_s": 1.5},
            }).encode() + b"\n")
            handle.flush()
            conn.close()

        thread = threading.Thread(target=answer_with_timeout_error,
                                  daemon=True)
        thread.start()
        host, port = listener.getsockname()
        try:
            with ServingClient(host, port, timeout=5.0) as client:
                with pytest.raises(RequestTimeoutError) as excinfo:
                    client.ping()
            assert excinfo.value.timeout_s == 1.5
        finally:
            listener.close()


class _SlowExecutor:
    """Duck-typed executor that stalls, so requests stay in flight."""

    kind = "slow"
    jobs = 1
    task_clock = staticmethod(time.perf_counter)

    def __init__(self, delay_s: float):
        self.delay_s = delay_s

    def map_tasks(self, fn, items):
        items = list(items)
        time.sleep(self.delay_s)
        return [fn(i, item) for i, item in enumerate(items)]


class TestDrainWithInFlightRequests:
    def test_close_drain_completes_backlog_then_refuses(self, tardis_small,
                                                        rw_small):
        """close(drain=True) with requests mid-queue: every accepted
        request completes with a real answer, and only afterwards do
        new connections get refused."""
        service = QueryService(
            tardis_small, max_batch=2, max_delay_ms=5.0,
            executor=_SlowExecutor(0.15), result_cache_size=None,
        )
        server = TardisServer(service, port=0)
        server.start()
        host, port = server.address
        results: list = []
        errors: list = []
        lock = threading.Lock()

        def fire(row: int):
            try:
                with ServingClient(host, port, timeout=30.0) as client:
                    got = client.knn(rw_small.values[row], k=3)
                with lock:
                    results.append(got)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=fire, args=(row,)) for row in range(6)
        ]
        for t in threads:
            t.start()
        time.sleep(0.1)  # let requests reach the queue / executor
        server.close(drain=True)
        for t in threads:
            t.join(30.0)
        assert not errors
        assert len(results) == 6
        assert all(len(r["record_ids"]) == 3 for r in results)
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2.0)

    def test_abort_fails_fast_instead_of_draining(self, tardis_small,
                                                  rw_small):
        """abort() is the crash twin: live connections reset instead of
        waiting for answers."""
        service = QueryService(
            tardis_small, max_batch=2, max_delay_ms=5.0,
            executor=_SlowExecutor(0.3), result_cache_size=None,
        )
        server = TardisServer(service, port=0)
        server.start()
        host, port = server.address
        outcomes: list = []
        lock = threading.Lock()

        def fire(row: int):
            try:
                with ServingClient(host, port, timeout=10.0) as client:
                    client.knn(rw_small.values[row], k=3)
                with lock:
                    outcomes.append("ok")
            except (ConnectionError, OSError, RuntimeError):
                with lock:
                    outcomes.append("cut")

        threads = [
            threading.Thread(target=fire, args=(row,)) for row in range(4)
        ]
        for t in threads:
            t.start()
        time.sleep(0.1)
        server.abort()
        for t in threads:
            t.join(15.0)
        assert len(outcomes) == 4
        assert "cut" in outcomes
