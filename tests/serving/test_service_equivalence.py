"""Serving equivalence: the server answers exactly like the library.

The acceptance bar for the serving tier: for a fixed index and query
set, results through the service — any executor backend, any batch size
— are identical to the same queries issued serially through
:mod:`repro.core.queries`.  Identical means exact equality of record
ids and float distances, not approximate closeness: the batch runners
and the interactive path share the same kernels, so there is no
tolerance to hide behind.
"""

import numpy as np
import pytest

from repro.core.queries import (
    exact_match,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.serving import QueryRequest, QueryService

# "processes" is accepted but coerced to "threads" by QueryService (fork
# from a multithreaded serving process can deadlock on inherited locks);
# parametrizing it here proves the coerced configuration still answers
# identically to the serial reference.
BACKENDS = ("serial", "threads", "processes")


@pytest.fixture(scope="module")
def query_mix(rw_small, heldout_queries):
    """Present rows (exact hits, partition reuse) plus held-out probes."""
    return np.vstack([rw_small.values[:12], heldout_queries[:8]])


def _serial_reference(index, queries, op, strategy, k, pth):
    if op == "exact-match":
        return [exact_match(index, q) for q in queries]
    fn = {
        "target-node": lambda q: knn_target_node_access(index, q, k),
        "one-partition": lambda q: knn_one_partition_access(index, q, k),
        "multi-partitions": lambda q: knn_multi_partitions_access(
            index, q, k, pth=pth
        ),
    }[strategy]
    return [fn(q) for q in queries]


def _served(index, queries, backend, max_batch, op, strategy, k, pth):
    with QueryService(
        index,
        max_batch=max_batch,
        max_delay_ms=5.0,
        executor=backend,
        jobs=4,
        result_cache_size=None,  # compare executions, not memoization
    ) as service:
        futures = [
            service.submit(
                QueryRequest(q, op=op, strategy=strategy, k=k, pth=pth)
            )
            for q in queries
        ]
        return [f.result(timeout=60) for f in futures]


def _assert_knn_identical(served, reference):
    for got, want in zip(served, reference):
        assert got.strategy == want.strategy
        assert got.record_ids == want.record_ids
        assert got.distances == want.distances  # exact float equality
        assert got.candidates_examined == want.candidates_examined
        assert sorted(got.partition_ids_loaded) == sorted(
            want.partition_ids_loaded
        )


@pytest.mark.parametrize("backend", BACKENDS)
class TestEquivalencePerBackend:
    def test_exact_match(self, tardis_small, query_mix, backend):
        reference = _serial_reference(
            tardis_small, query_mix, "exact-match", None, 0, None
        )
        served = _served(
            tardis_small, query_mix, backend, 8, "exact-match", None, 0, None
        )
        for got, want in zip(served, reference):
            assert got.record_ids == want.record_ids
            assert got.bloom_rejected == want.bloom_rejected
            assert got.found == want.found

    def test_knn_target_node(self, tardis_small, query_mix, backend):
        reference = _serial_reference(
            tardis_small, query_mix, "knn", "target-node", 10, None
        )
        served = _served(
            tardis_small, query_mix, backend, 8, "knn", "target-node", 10,
            None,
        )
        _assert_knn_identical(served, reference)

    def test_knn_one_partition(self, tardis_small, query_mix, backend):
        reference = _serial_reference(
            tardis_small, query_mix, "knn", "one-partition", 10, None
        )
        served = _served(
            tardis_small, query_mix, backend, 8, "knn", "one-partition", 10,
            None,
        )
        _assert_knn_identical(served, reference)

    def test_knn_multi_partitions(self, tardis_small, query_mix, backend):
        reference = _serial_reference(
            tardis_small, query_mix, "knn", "multi-partitions", 10, 3
        )
        served = _served(
            tardis_small, query_mix, backend, 8, "knn", "multi-partitions",
            10, 3,
        )
        _assert_knn_identical(served, reference)


@pytest.mark.parametrize("max_batch", (1, 4, 32))
def test_equivalence_across_batch_sizes(tardis_small, query_mix, max_batch):
    """Batch size is a performance knob, never a correctness knob."""
    reference = _serial_reference(
        tardis_small, query_mix, "knn", "target-node", 5, None
    )
    served = _served(
        tardis_small, query_mix, "threads", max_batch, "knn", "target-node",
        5, None,
    )
    _assert_knn_identical(served, reference)


def test_mixed_plan_window_routes_per_strategy(tardis_small, query_mix):
    """One flush window holding every op/strategy still answers each
    request with its own plan (per-strategy routing)."""
    q = query_mix[0]
    plans = [
        dict(op="exact-match"),
        dict(op="knn", strategy="target-node", k=5),
        dict(op="knn", strategy="one-partition", k=5),
        dict(op="knn", strategy="multi-partitions", k=5, pth=3),
    ]
    with QueryService(
        tardis_small, max_batch=16, max_delay_ms=20.0, executor="threads",
        result_cache_size=None,
    ) as service:
        futures = [
            service.submit(QueryRequest(q, **plan)) for plan in plans
        ]
        results = [f.result(timeout=60) for f in futures]
    assert results[0].record_ids == exact_match(tardis_small, q).record_ids
    assert results[1].strategy == "target-node"
    assert results[2].strategy == "one-partition"
    assert results[3].strategy == "multi-partitions"
    want = knn_multi_partitions_access(tardis_small, q, 5, pth=3)
    assert results[3].record_ids == want.record_ids
    assert results[3].distances == want.distances


def test_drain_on_shutdown_completes_backlog(tardis_small, query_mix):
    service = QueryService(
        tardis_small, max_batch=4, max_delay_ms=50.0, executor="threads"
    ).start()
    futures = [
        service.submit(QueryRequest(q, op="knn", strategy="target-node",
                                    k=5))
        for q in query_mix
    ]
    service.stop(drain=True)
    assert all(f.done() for f in futures)
    assert all(f.exception() is None for f in futures)


def test_processes_executor_coerced_to_threads(tardis_small):
    """Fork-based execution is unsupported in the multithreaded serving
    process (handler threads may hold telemetry/cache/SLO locks at fork
    time); the service must fall back to threads rather than deadlock."""
    service = QueryService(tardis_small, executor="processes", jobs=2)
    assert service.executor.kind == "threads"
    assert service.stats()["config"]["executor"] == "threads"


def test_unclustered_index_rejected_at_construction():
    from repro.core import TardisConfig, build_tardis_index
    from repro.tsdb import random_walk

    dataset = random_walk(300, length=32, seed=3).z_normalized()
    index = build_tardis_index(
        dataset, TardisConfig(g_max_size=60, l_max_size=12),
        clustered=False,
    )
    with pytest.raises(RuntimeError, match="clustered"):
        QueryService(index, executor="serial")


def test_wrong_length_query_rejected_at_submit(tardis_small):
    with QueryService(tardis_small, executor="serial") as service:
        with pytest.raises(ValueError, match="length"):
            service.submit(QueryRequest(np.zeros(7), op="exact-match"))
