"""Streaming writes through the serving tier: wire ops, durability
ordering, ingest accounting, and cache coherence under writes."""

import numpy as np
import pytest

from repro.core import (
    TardisConfig,
    WriteAheadLog,
    build_tardis_index,
    exact_match,
    read_wal,
    replay_wal,
)
from repro.serving import QueryRequest, QueryService, ServingClient, TardisServer
from repro.serving.requests import WriteRequest
from repro.tsdb import random_walk

LENGTH = 48
BASE_N = 400


@pytest.fixture()
def dataset():
    return random_walk(BASE_N, length=LENGTH, seed=21).z_normalized()


@pytest.fixture()
def stream():
    return random_walk(30, length=LENGTH, seed=22).z_normalized().values


@pytest.fixture()
def index(dataset):
    # Private per-test build: writes mutate the index, so the shared
    # session-scoped fixtures must never be used here.
    config = TardisConfig(g_max_size=100, l_max_size=20, seed=9)
    return build_tardis_index(dataset, config)


def service(index, **kwargs):
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_delay_ms", 1.0)
    return QueryService(index, **kwargs)


class TestWriteOps:
    def test_write_then_query_roundtrip(self, index, stream):
        with service(index) as svc:
            ack = svc.write(stream[:4])
            assert ack.acknowledged == 4
            assert ack.record_ids == list(range(BASE_N, BASE_N + 4))
            assert not ack.durable  # no WAL configured
            got = svc.query(QueryRequest(stream[0], op="exact-match"))
            assert BASE_N in got.record_ids

    def test_reads_and_writes_interleave_in_one_window(self, index, stream):
        with service(index, max_batch=32, max_delay_ms=5.0) as svc:
            futures = []
            for i in range(8):
                futures.append(svc.submit_write(
                    WriteRequest(batch=stream[i:i + 1])))
                futures.append(svc.submit(
                    QueryRequest(stream[i], op="exact-match")))
            results = [f.result(timeout=30.0) for f in futures]
        # Writes in a window apply before its reads: every read of the
        # just-written series finds it.
        for i, got in enumerate(results[1::2]):
            assert (BASE_N + i) in got.record_ids

    def test_bad_shape_rejected_before_wal(self, index, tmp_path, stream):
        wal_path = tmp_path / "w.wal"
        with service(index, wal=wal_path) as svc:
            with pytest.raises(ValueError):
                svc.write(np.zeros((2, LENGTH + 3)))
            before = read_wal(wal_path)[0]
            ack = svc.write(stream[:1])
            assert ack.durable
        # The rejected batch never reached the log.
        records, _ = read_wal(wal_path)
        assert len(records) == len(before) + 1

    def test_ingest_stats_and_metrics(self, index, stream):
        with service(index) as svc:
            svc.write(stream[:3])
            svc.write(stream[3:5])
            report = svc.stats()
        ingest = report["ingest"]
        assert ingest["writes_total"] == 2
        assert ingest["write_records_total"] == 5
        assert ingest["writes_failed"] == 0
        assert ingest["wal"] is None


class TestDurabilityOrdering:
    def test_ack_implies_logged(self, index, tmp_path, stream):
        wal_path = tmp_path / "order.wal"
        with service(index, wal=wal_path) as svc:
            ack = svc.write(stream[:6])
            assert ack.durable
            records, torn = read_wal(wal_path)
            assert not torn
            logged_ids = [r["record_id"] for r in records
                          if r["kind"] == "append"]
            # Every acknowledged id is already on disk at ack time.
            assert set(ack.record_ids) <= set(logged_ids)
            report = svc.stats()
            assert report["ingest"]["wal"]["appends_logged"] == 6

    def test_replay_recovers_acked_writes(self, index, dataset,
                                          tmp_path, stream):
        wal_path = tmp_path / "recover.wal"
        with service(index, wal=wal_path) as svc:
            acked = svc.write(stream).record_ids
        fresh = build_tardis_index(
            dataset, TardisConfig(g_max_size=100, l_max_size=20, seed=9)
        )
        report = replay_wal(fresh, wal_path)
        assert report.record_ids == acked
        fresh.validate()
        for i, row in enumerate(stream):
            assert acked[i] in exact_match(fresh, row).record_ids

    def test_external_wal_not_closed_by_service(self, index, tmp_path,
                                                stream):
        wal = WriteAheadLog(tmp_path / "shared.wal")
        with service(index, wal=wal) as svc:
            svc.write(stream[:2])
        # Caller-owned log: the service must not close it on stop.
        wal.log_appends([(999, stream[2])])
        wal.close()


class TestCacheCoherence:
    def test_knn_cache_invalidated_by_write(self, index, stream):
        """Regression: a cached kNN answer whose candidate set a new
        record would change must be invalidated by the write — the old
        bug only dropped the exact-match negative-cache entry."""
        query = stream[7]
        with service(index, result_cache_size=64) as svc:
            request = QueryRequest(
                query, op="knn", strategy="multi-partitions", k=5
            )
            before = svc.query(request)
            cached = svc.query(request)  # now served from the cache
            assert cached.record_ids == before.record_ids
            # Writing the query series itself creates a distance-zero
            # neighbor that must displace the cached top-k.
            ack = svc.write(query[np.newaxis, :])
            after = svc.query(request)
        assert ack.record_ids[0] in after.record_ids
        assert after.record_ids != before.record_ids

    def test_exact_negative_cache_invalidated(self, index, stream):
        probe = stream[11]
        with service(index, result_cache_size=64) as svc:
            request = QueryRequest(probe, op="exact-match")
            miss = svc.query(request)
            assert not miss.found
            svc.write(probe[np.newaxis, :])
            hit = svc.query(request)
            assert hit.found


class TestWireProtocol:
    def test_write_ops_over_socket(self, index, stream):
        with service(index) as svc:
            server = TardisServer(svc, "127.0.0.1", 0)
            server.start()
            host, port = server.address
            try:
                with ServingClient(host, port) as client:
                    one = client.write(stream[0])
                    assert one["record_ids"] == [BASE_N]
                    assert one["partition_ids"]
                    many = client.write_batch(stream[1:4].tolist())
                    assert many["record_ids"] == [
                        BASE_N + 1, BASE_N + 2, BASE_N + 3
                    ]
                    found = client.exact_match(stream[2])
                    assert (BASE_N + 2) in found["record_ids"]
            finally:
                server.close(drain=True)

    def test_wire_rejects_bad_write(self, index):
        with service(index) as svc:
            server = TardisServer(svc, "127.0.0.1", 0)
            server.start()
            host, port = server.address
            try:
                with ServingClient(host, port) as client:
                    with pytest.raises(RuntimeError):
                        client.write([1.0, 2.0, 3.0])  # wrong length
            finally:
                server.close(drain=True)
