"""TCP front-end: wire protocol, remote equivalence, overload shape."""

import json
import socket
import time

import numpy as np
import pytest

from repro.core.queries import exact_match, knn_target_node_access
from repro.serving import (
    OverloadedError,
    QueryService,
    ServingClient,
    TardisServer,
    serve,
)


@pytest.fixture()
def running_server(tardis_small):
    server = serve(tardis_small, port=0, max_batch=4, max_delay_ms=1.0)
    server.start()
    yield server
    server.close()


class TestWireProtocol:
    def test_ping(self, running_server):
        host, port = running_server.address
        with ServingClient(host, port) as client:
            assert client.ping()

    def test_remote_knn_bit_identical(self, running_server, rw_small):
        host, port = running_server.address
        query = rw_small.values[3]
        local = knn_target_node_access(running_server.service.index, query, 7)
        with ServingClient(host, port) as client:
            remote = client.knn(query, k=7, strategy="target-node")
        assert remote["record_ids"] == local.record_ids
        # JSON round-trips floats exactly: bit-identical distances.
        assert remote["distances"] == local.distances

    def test_remote_exact_match(self, running_server, rw_small,
                                heldout_queries):
        host, port = running_server.address
        index = running_server.service.index
        with ServingClient(host, port) as client:
            present = client.exact_match(rw_small.values[9])
            absent = client.exact_match(heldout_queries[0])
        assert present["found"]
        assert present["record_ids"] == exact_match(
            index, rw_small.values[9]
        ).record_ids
        assert not absent["found"]
        assert absent["bloom_rejected"] == exact_match(
            index, heldout_queries[0]
        ).bloom_rejected

    def test_stats_reports_slo_fields(self, running_server, rw_small):
        host, port = running_server.address
        with ServingClient(host, port) as client:
            client.knn(rw_small.values[0], k=3)
            stats = client.stats()
        for field in (
            "requests_completed", "requests_shed", "queue_depth",
            "latency", "batch_occupancy_mean", "partitions_per_query",
            "result_cache_hit_rate",
        ):
            assert field in stats
        for pct in ("p50_s", "p95_s", "p99_s"):
            assert pct in stats["latency"]
        assert stats["requests_completed"] >= 1

    def test_multiple_requests_one_connection(self, running_server,
                                              rw_small):
        host, port = running_server.address
        with ServingClient(host, port) as client:
            for row in range(5):
                result = client.exact_match(rw_small.values[row])
                assert result["record_ids"] == [row]


class TestErrorShapes:
    def _raw_call(self, address, payload: bytes) -> dict:
        with socket.create_connection(address, timeout=10) as sock:
            handle = sock.makefile("rwb")
            handle.write(payload + b"\n")
            handle.flush()
            return json.loads(handle.readline())

    def test_malformed_json_is_bad_request(self, running_server):
        response = self._raw_call(running_server.address, b"{not json")
        assert response["ok"] is False
        assert response["error"]["type"] == "bad-request"

    def test_non_object_is_bad_request(self, running_server):
        response = self._raw_call(running_server.address, b"[1, 2, 3]")
        assert response["ok"] is False
        assert response["error"]["type"] == "bad-request"

    def test_missing_series_is_bad_request(self, running_server):
        response = self._raw_call(
            running_server.address, json.dumps({"op": "knn"}).encode()
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "bad-request"

    def test_wrong_length_series_is_bad_request(self, running_server):
        response = self._raw_call(
            running_server.address,
            json.dumps({"op": "knn", "series": [1.0, 2.0]}).encode(),
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "bad-request"

    def test_unknown_strategy_is_bad_request(self, running_server,
                                             rw_small):
        response = self._raw_call(
            running_server.address,
            json.dumps({
                "op": "knn",
                "series": rw_small.values[0].tolist(),
                "strategy": "warp",
            }).encode(),
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "bad-request"

    def test_oversized_line_rejected_and_connection_closed(
        self, tardis_small, monkeypatch
    ):
        # A request longer than the line cap must be rejected cleanly and
        # the connection closed — not split at the cap and the remainder
        # parsed as phantom follow-up requests.
        monkeypatch.setattr("repro.serving.server.MAX_LINE_BYTES", 128)
        with serve(tardis_small, port=0, max_batch=2,
                   max_delay_ms=1.0) as server:
            with socket.create_connection(server.address,
                                          timeout=10) as sock:
                handle = sock.makefile("rwb")
                handle.write(b"x" * 400 + b"\n")
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "bad-request"
                assert "exceeds" in response["error"]["message"]
                # The server closed the connection: no desynchronized
                # replies to the tail of the oversized line.
                assert handle.readline() == b""


class TestObservabilityOps:
    def test_journal_op_returns_records_and_stats(self, running_server,
                                                  rw_small):
        host, port = running_server.address
        with ServingClient(host, port) as client:
            client.knn(rw_small.values[1], k=3)
            payload = client.journal(n=10)
        assert payload["stats"]["total"] >= 1
        kinds = {r["kind"] for r in payload["records"]}
        assert "batch" in kinds
        # Kind filter narrows to the requested stream only.
        with ServingClient(host, port) as client:
            batches = client.journal(n=10, kind="batch")
        assert all(r["kind"] == "batch" for r in batches["records"])

    def test_trace_op_reports_disabled_tracer(self, running_server,
                                              rw_small):
        # running_server starts with the module tracer disabled: the op
        # answers (no error) but flags it, and a traced query carries a
        # null trace in its envelope.
        host, port = running_server.address
        with ServingClient(host, port) as client:
            listing = client.traces(n=5)
            assert listing["enabled"] is False
            client.knn(rw_small.values[0], k=3, trace=True)
            assert client.last_trace is None

    def test_trace_envelope_and_lookup(self, tardis_small, rw_small):
        from repro.telemetry.spans import disable_tracing, enable_tracing

        enable_tracing(reset=True)
        try:
            with serve(tardis_small, port=0, max_batch=4,
                       max_delay_ms=1.0) as server:
                host, port = server.address
                with ServingClient(host, port) as client:
                    client.knn(rw_small.values[5], k=3, trace=True)
                    trace = client.last_trace
                    assert trace is not None
                    assert trace["name"] == "serve/request"
                    assert trace["duration_s"] > 0
                    child_names = {c["name"] for c in trace["children"]}
                    assert {"serve/queue-wait", "serve/batch-wait",
                            "serve/execute"} <= child_names
                    # The same finished trace is retrievable by id.
                    listing = client.traces(trace_id=trace["trace_id"])
                    assert listing["enabled"] is True
                    assert listing["traces"][0]["trace_id"] == \
                        trace["trace_id"]
                    # An untraced query does not disturb last_trace…
                    # it resets it, so stale timelines can't be
                    # misattributed to the wrong request.
                    client.knn(rw_small.values[6], k=3)
                    assert client.last_trace is None
        finally:
            disable_tracing()


class _SlowExecutor:
    """Duck-typed executor that stalls, letting the queue fill up."""

    kind = "slow"
    jobs = 1
    task_clock = staticmethod(time.perf_counter)

    def __init__(self, delay_s: float):
        self.delay_s = delay_s

    def map_tasks(self, fn, items):
        items = list(items)
        time.sleep(self.delay_s)
        return [fn(i, item) for i, item in enumerate(items)]


class TestOverload:
    def test_shed_policy_surfaces_overloaded_error(self, tardis_small,
                                                   rw_small):
        service = QueryService(
            tardis_small,
            queue_capacity=2,
            policy="shed",
            max_batch=1,
            max_delay_ms=0.0,
            executor=_SlowExecutor(0.2),
            result_cache_size=None,
        )
        server = TardisServer(service, port=0)
        server.start()
        try:
            host, port = server.address
            clients = [ServingClient(host, port) for _ in range(6)]
            try:
                import threading

                outcomes: list[str] = []
                lock = threading.Lock()

                def fire(client):
                    try:
                        client.knn(rw_small.values[0], k=3)
                        with lock:
                            outcomes.append("ok")
                    except OverloadedError:
                        with lock:
                            outcomes.append("overloaded")

                threads = [
                    threading.Thread(target=fire, args=(c,))
                    for c in clients
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(30.0)
                # With a 2-deep queue and a stalled worker, some of the 6
                # concurrent requests must shed — and shed requests raise
                # the structured client-side error, not a generic one.
                assert "overloaded" in outcomes
                assert service.stats()["requests_shed"] >= 1
            finally:
                for client in clients:
                    client.close()
        finally:
            server.close()
