"""Serving-tier tests."""
