"""Trace propagation through the serving pipeline, per executor backend.

The invariant (ISSUE 4): every served query yields exactly one root span
named ``serve/request``, whose children partition the request's life into
queue-wait, batch-wait and execute segments — regardless of which
executor backend ran the partition work, and even though the request
crosses the admission queue and the batcher thread on the way.
"""

import numpy as np
import pytest

from repro.serving import QueryRequest, QueryService
from repro.telemetry.spans import disable_tracing, enable_tracing
from repro.telemetry.journal import EventJournal

# "processes" is coerced to "threads" inside QueryService (fork from a
# multithreaded server can deadlock); parametrizing it proves the
# coercion path still stitches one trace per request.
BACKENDS = ("serial", "threads", "processes")

SEGMENTS = ("serve/queue-wait", "serve/batch-wait", "serve/execute")


@pytest.fixture()
def tracer():
    tracer = enable_tracing(reset=True)
    yield tracer
    disable_tracing()


def _mixed_requests(rw_small, heldout_queries):
    """One request per op/strategy the acceptance bar names."""
    return [
        QueryRequest(rw_small.values[0], op="exact-match"),
        QueryRequest(heldout_queries[0], k=5, strategy="target-node"),
        QueryRequest(heldout_queries[1], k=5, strategy="one-partition"),
        QueryRequest(heldout_queries[2], k=5, strategy="multi-partitions",
                     pth=4),
    ]


def _serve_all(index, requests, backend, **kwargs):
    with QueryService(
        index,
        max_batch=4,
        max_delay_ms=2.0,
        executor=backend,
        jobs=2,
        result_cache_size=kwargs.pop("result_cache_size", None),
        journal=kwargs.pop("journal", EventJournal(capacity=256)),
        **kwargs,
    ) as service:
        futures = [service.submit(r) for r in requests]
        for future in futures:
            future.result(timeout=30)
        slo_latency_sum = service.slo._latency_hist.sum
    return futures, slo_latency_sum


@pytest.mark.parametrize("backend", BACKENDS)
class TestOneRootPerQuery:
    def test_exactly_one_root_per_served_query(
        self, tracer, tardis_small, rw_small, heldout_queries, backend
    ):
        requests = _mixed_requests(rw_small, heldout_queries)
        _serve_all(tardis_small, requests, backend)
        roots = list(tracer.roots)
        assert len(roots) == len(requests)
        assert all(r.name == "serve/request" for r in roots)
        # Each tree carries a single trace id (no fragmentation across
        # the queue, the batcher thread, or the executor pool).
        for root in roots:
            assert {s.trace_id for s in root.iter_spans()} == {root.trace_id}
        # And the four trees are four distinct traces.
        assert len({r.trace_id for r in roots}) == len(requests)

    def test_all_segments_present(
        self, tracer, tardis_small, rw_small, heldout_queries, backend
    ):
        requests = _mixed_requests(rw_small, heldout_queries)
        _serve_all(tardis_small, requests, backend)
        for root in tracer.roots:
            child_names = {c.name for c in root.children}
            for segment in SEGMENTS:
                assert segment in child_names, (root.name, child_names)
            # Every span in the tree is finished.
            assert all(s.end_s is not None for s in root.iter_spans())

    def test_segment_sums_bracket_slo_latency(
        self, tracer, tardis_small, rw_small, heldout_queries, backend
    ):
        requests = _mixed_requests(rw_small, heldout_queries)
        _, slo_latency_sum = _serve_all(tardis_small, requests, backend)
        segment_total = 0.0
        root_total = 0.0
        for root in tracer.roots:
            segments = sum(
                c.duration_s for c in root.children if c.name in SEGMENTS
            )
            # The three segments tile the root's lifetime: together they
            # can never exceed it (5 ms slack for clock reads between
            # segment boundaries).
            assert segments <= root.duration_s + 0.005
            segment_total += segments
            root_total += root.duration_s
        # SLO latency is measured enqueue → finish, which the segments
        # tile from below and the root duration covers from above.
        slack = 0.005 * len(requests)
        assert segment_total <= slo_latency_sum + slack
        assert slo_latency_sum <= root_total + slack


class TestCacheAndSharedPasses:
    def test_cache_hit_root_has_cache_segment(
        self, tracer, tardis_small, rw_small
    ):
        request_a = QueryRequest(rw_small.values[1], k=3,
                                 strategy="target-node")
        request_b = QueryRequest(rw_small.values[1], k=3,
                                 strategy="target-node")
        _serve_all(tardis_small, [request_a], "serial",
                   result_cache_size=64)
        # Same query again: served from the result cache, but still one
        # root of its own with a serve/cache child.
        with QueryService(
            tardis_small, max_batch=4, max_delay_ms=2.0,
            executor="serial", result_cache_size=64,
            journal=EventJournal(capacity=64),
        ) as service:
            service.submit(request_a).result(timeout=30)
            service.submit(request_b).result(timeout=30)
        roots = [r for r in tracer.roots]
        cached = [r for r in roots
                  if "serve/cache" in {c.name for c in r.children}]
        assert cached, [r.name for r in roots]
        assert all(r.name == "serve/request" for r in roots)

    def test_shared_batch_pass_marks_siblings(
        self, tracer, tardis_small, rw_small
    ):
        # Identical exact-match queries land in one group and run as a
        # single batch pass; the carrier's root holds the core spans and
        # siblings point at it via shared_execution_trace.
        query = rw_small.values[2]
        requests = [QueryRequest(query, op="exact-match") for _ in range(3)]
        _serve_all(tardis_small, requests, "serial")
        roots = list(tracer.roots)
        assert len(roots) == len(requests)
        executes = [c for r in roots for c in r.children
                    if c.name == "serve/execute"]
        assert len(executes) == len(requests)
        carriers = [e for e in executes if e.children]
        siblings = [e for e in executes
                    if "shared_execution_trace" in e.attributes]
        assert len(carriers) == 1
        assert len(siblings) == len(requests) - 1
        assert all(
            s.attributes["shared_execution_trace"] == carriers[0].trace_id
            for s in siblings
        )
