"""Tests for the E2LSH comparator."""

import numpy as np
import pytest

from repro.core import brute_force_knn
from repro.lsh import LshConfig, build_lsh_index
from repro.tsdb import random_walk
from repro.tsdb.series import z_normalize


@pytest.fixture(scope="module")
def dataset():
    return random_walk(4000, length=64, seed=5).z_normalized()


@pytest.fixture(scope="module")
def lsh(dataset):
    # Width tuned for length-64 series (typical distances ~ sqrt(128)).
    return build_lsh_index(dataset, LshConfig(bucket_width=12.0))


def _probe(seed: int, dataset) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = dataset.values[rng.integers(len(dataset))]
    return z_normalize(base + rng.normal(0, 0.2, dataset.length))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LshConfig(n_tables=0)
        with pytest.raises(ValueError):
            LshConfig(hashes_per_table=0)
        with pytest.raises(ValueError):
            LshConfig(bucket_width=0.0)


class TestHashing:
    def test_same_vector_same_buckets(self, lsh, dataset):
        a = lsh._bucket_keys(dataset.values[0])
        b = lsh._bucket_keys(dataset.values[0])
        np.testing.assert_array_equal(a, b)

    def test_deterministic_given_seed(self, dataset):
        a = build_lsh_index(dataset, LshConfig(seed=3, bucket_width=12.0))
        b = build_lsh_index(dataset, LshConfig(seed=3, bucket_width=12.0))
        q = _probe(0, dataset)
        assert a.knn(q, 5).record_ids == b.knn(q, 5).record_ids

    def test_every_record_in_every_table(self, lsh, dataset):
        for table in lsh._tables:
            total = sum(len(postings) for postings in table.values())
            assert total == len(dataset)


class TestKnn:
    def test_self_query_found(self, lsh, dataset):
        result = lsh.knn(dataset.values[7], 1)
        assert result.record_ids == [7]
        assert result.distances[0] == 0.0

    def test_sorted_and_true_distances(self, lsh, dataset):
        q = _probe(1, dataset)
        result = lsh.knn(q, 10)
        assert result.distances == sorted(result.distances)
        for rid, dist in zip(result.record_ids, result.distances):
            true = float(np.linalg.norm(q - dataset.series(rid)))
            assert dist == pytest.approx(true)

    def test_reasonable_recall_on_perturbed_members(self, lsh, dataset):
        recalls = []
        for seed in range(12):
            q = _probe(seed + 10, dataset)
            result = lsh.knn(q, 10)
            truth = {n.record_id for n in brute_force_knn(dataset, q, 10)}
            recalls.append(len(set(result.record_ids) & truth) / 10)
        assert float(np.mean(recalls)) > 0.4

    def test_candidate_accounting_and_cost(self, lsh, dataset):
        result = lsh.knn(_probe(2, dataset), 5)
        assert result.tables_probed == lsh.config.n_tables
        assert result.candidates_examined >= len(result.record_ids)
        if result.candidates_examined:
            assert result.simulated_seconds > 0
            assert "query/random candidate reads" in result.ledger.breakdown()

    def test_far_query_may_return_short(self, lsh, dataset):
        # A vector far outside the data distribution can miss every bucket.
        q = np.full(dataset.length, 50.0)
        result = lsh.knn(q, 5)
        assert len(result.record_ids) <= 5  # possibly zero; must not raise

    def test_invalid_k(self, lsh, dataset):
        with pytest.raises(ValueError):
            lsh.knn(dataset.values[0], 0)


class TestReporting:
    def test_nbytes_positive(self, lsh):
        assert lsh.nbytes() > 0

    def test_bucket_stats(self, lsh, dataset):
        n_buckets, mean_postings = lsh.bucket_stats()
        assert n_buckets > 0
        assert mean_postings >= 1.0

    def test_more_tables_higher_recall(self, dataset):
        few = build_lsh_index(dataset, LshConfig(n_tables=2, bucket_width=12.0))
        many = build_lsh_index(dataset, LshConfig(n_tables=12, bucket_width=12.0))
        few_r, many_r = [], []
        for seed in range(10):
            q = _probe(seed + 30, dataset)
            truth = {n.record_id for n in brute_force_knn(dataset, q, 10)}
            few_r.append(len(set(few.knn(q, 10).record_ids) & truth) / 10)
            many_r.append(len(set(many.knn(q, 10).record_ids) & truth) / 10)
        assert float(np.mean(many_r)) >= float(np.mean(few_r))


class TestMultiProbe:
    def test_probes_increase_recall(self, dataset):
        base = build_lsh_index(
            dataset, LshConfig(n_tables=4, bucket_width=12.0)
        )
        probed = build_lsh_index(
            dataset,
            LshConfig(n_tables=4, bucket_width=12.0, probes_per_table=4),
        )
        base_r, probed_r = [], []
        for seed in range(12):
            q = _probe(seed + 50, dataset)
            truth = {n.record_id for n in brute_force_knn(dataset, q, 10)}
            base_r.append(len(set(base.knn(q, 10).record_ids) & truth) / 10)
            probed_r.append(
                len(set(probed.knn(q, 10).record_ids) & truth) / 10
            )
        assert float(np.mean(probed_r)) > float(np.mean(base_r))

    def test_probe_count_accounting(self, dataset):
        lsh = build_lsh_index(
            dataset,
            LshConfig(n_tables=3, bucket_width=12.0, probes_per_table=2),
        )
        result = lsh.knn(dataset.values[0], 5)
        assert result.tables_probed == 3 * (1 + 2)

    def test_probe_sequence_perturbs_one_coordinate(self, lsh, dataset):
        keys, fractions = lsh._keys_and_fractions(dataset.values[0])
        lsh_probed = build_lsh_index(
            dataset,
            LshConfig(bucket_width=12.0, probes_per_table=3),
        )
        k2, f2 = lsh_probed._keys_and_fractions(dataset.values[0])
        probes = lsh_probed._probe_sequence(k2[0, 0], f2[0, 0])
        assert len(probes) == 4
        base = np.array(probes[0])
        for extra in probes[1:]:
            diff = np.abs(np.array(extra) - base)
            assert diff.sum() == 1  # exactly one coordinate moved by 1

    def test_negative_probes_rejected(self):
        with pytest.raises(ValueError):
            LshConfig(probes_per_table=-1)
