"""Tests for recall (Eq. 5) and error ratio (Eq. 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.accuracy import error_ratio, mean, recall


class TestRecall:
    def test_perfect(self):
        assert recall([1, 2, 3], [1, 2, 3]) == 1.0

    def test_none(self):
        assert recall([4, 5, 6], [1, 2, 3]) == 0.0

    def test_partial(self):
        assert recall([1, 9, 3], [1, 2, 3]) == pytest.approx(2 / 3)

    def test_order_irrelevant(self):
        assert recall([3, 1, 2], [1, 2, 3]) == 1.0

    def test_duplicates_counted_once(self):
        assert recall([1, 1, 1], [1, 2]) == 0.5

    def test_empty_truth_raises(self):
        with pytest.raises(ValueError):
            recall([1], [])

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=15, unique=True))
    @settings(max_examples=40)
    def test_bounded(self, truth):
        assert 0.0 <= recall(truth[: len(truth) // 2], truth) <= 1.0


class TestErrorRatio:
    def test_ideal_is_one(self):
        assert error_ratio([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_known_value(self):
        assert error_ratio([2.0, 4.0], [1.0, 2.0]) == 2.0

    def test_mixed(self):
        assert error_ratio([1.0, 3.0], [1.0, 2.0]) == pytest.approx(1.25)

    def test_zero_truth_zero_result(self):
        assert error_ratio([0.0, 2.0], [0.0, 2.0]) == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="pad or truncate"):
            error_ratio([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            error_ratio([], [])

    @given(
        st.lists(st.floats(0.1, 100, allow_nan=False), min_size=1, max_size=20)
    )
    @settings(max_examples=60)
    def test_at_least_one_when_result_dominates(self, truth):
        """Result distances >= truth distances => ratio >= 1."""
        result = [d * 1.5 for d in truth]
        assert error_ratio(result, truth) >= 1.0


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])
