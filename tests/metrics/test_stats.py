"""Tests for distribution statistics (Fig. 9 skew, Fig. 17c MSE)."""

import numpy as np
import pytest

from repro.metrics.stats import (
    gini_coefficient,
    partition_size_mse,
    signature_distribution,
)
from repro.tsdb import noaa_like, random_walk


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            counts = rng.integers(0, 50, size=rng.integers(1, 30))
            g = gini_coefficient(counts)
            assert -1e-9 <= g < 1.0

    def test_scale_invariant(self):
        counts = [1, 4, 9, 20]
        assert gini_coefficient(counts) == pytest.approx(
            gini_coefficient([10 * c for c in counts])
        )

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0, 0]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            gini_coefficient([])


class TestSignatureDistribution:
    def test_fields_consistent(self):
        ds = random_walk(500, length=64)
        dist = signature_distribution(ds, bits=2)
        assert dist.n_series == 500
        assert 1 <= dist.n_distinct <= 500
        assert 0 < dist.top1pct_coverage <= dist.top10pct_coverage <= 1.0
        assert dist.max_frequency >= 1
        assert dist.dataset_name == ds.name

    def test_skewed_dataset_higher_gini(self):
        smooth = signature_distribution(random_walk(800, length=64), bits=2)
        skewed = signature_distribution(noaa_like(800), bits=2)
        assert skewed.gini > smooth.gini

    def test_bits_parameter_changes_granularity(self):
        ds = random_walk(500, length=64)
        coarse = signature_distribution(ds, bits=1)
        fine = signature_distribution(ds, bits=4)
        assert coarse.n_distinct <= fine.n_distinct


class TestPartitionSizeMse:
    def test_identical_distributions_zero(self):
        sizes = [100, 200, 300, 150]
        assert partition_size_mse(sizes, sizes, bucket=50) == 0.0

    def test_same_histogram_different_counts_zero(self):
        # Doubling every partition keeps the probability distribution.
        a = [100, 100, 200]
        b = [100, 100, 100, 100, 200, 200]
        assert partition_size_mse(a, b, bucket=50) == pytest.approx(0.0)

    def test_different_distributions_positive(self):
        assert partition_size_mse([100, 100], [500, 500], bucket=50) > 0

    def test_closer_estimate_smaller_mse(self):
        reference = [100, 120, 140, 400, 420]
        close = [105, 125, 135, 395, 425]
        far = [10, 20, 30, 40, 50]
        assert partition_size_mse(close, reference, bucket=30) < (
            partition_size_mse(far, reference, bucket=30)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_size_mse([1], [1], bucket=0)
        with pytest.raises(ValueError):
            partition_size_mse([], [1], bucket=5)
