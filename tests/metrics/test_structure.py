"""Tests for the index-structure analysis metrics."""

import pytest

from repro.metrics.structure import analyze_dpisax_locals, analyze_tardis_locals


class TestStructureReports:
    def test_tardis_report_consistency(self, tardis_small):
        report = analyze_tardis_locals(tardis_small)
        assert report.system == "TARDIS"
        assert report.n_trees == len(tardis_small.partitions)
        assert report.n_nodes == report.n_internal + report.n_leaves
        assert report.avg_leaf_size > 0
        assert 0 < report.avg_leaf_depth <= report.max_leaf_depth
        assert 0 <= report.internal_fraction < 1

    def test_dpisax_report_consistency(self, dpisax_small):
        report = analyze_dpisax_locals(dpisax_small)
        assert report.system == "Baseline"
        assert report.n_trees == len(dpisax_small.partitions)
        assert report.n_nodes == report.n_internal + report.n_leaves
        assert report.avg_leaf_size > 0

    def test_paper_compactness_claims(self, tardis_small, dpisax_small):
        """§III-B: fewer internal nodes; §VI-C.2: finer-grained leaves."""
        t = analyze_tardis_locals(tardis_small)
        b = analyze_dpisax_locals(dpisax_small)
        assert t.n_internal < b.n_internal
        assert t.avg_leaf_size < b.avg_leaf_size
        assert t.max_leaf_depth <= b.max_leaf_depth

    def test_total_entries_match_records(self, tardis_small, rw_small):
        report = analyze_tardis_locals(tardis_small)
        # avg_leaf_size * non-empty leaves == total records.
        non_empty = sum(
            1
            for p in tardis_small.partitions.values()
            for leaf in p.tree.leaves()
            if leaf.entries
        )
        assert report.avg_leaf_size * non_empty == pytest.approx(len(rw_small))
