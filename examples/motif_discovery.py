#!/usr/bin/env python
"""Motif discovery in a long recording via subsequence indexing.

Scenario: a single long sensor recording (think an industrial vibration
channel) contains a short pattern that recurs at unknown positions.  The
classic index-based approach: slice the recording into overlapping
windows, index them, and use kNN on any window to find its recurrences —
which is exactly the subsequence workflow the paper's DNA dataset
represents (one genome divided into fixed-length subsequences).

The script plants a motif at known offsets inside a noisy recording,
builds a TARDIS index over the sliding windows, queries with the motif
shape, and checks the hits land on the planted offsets.  Trivial
self-matches (overlapping windows) are filtered with the standard
exclusion-zone rule.

Run with::

    python examples/motif_discovery.py
"""

import numpy as np

from repro.core import TardisConfig, build_tardis_index, knn_multi_partitions_access
from repro.tsdb.series import z_normalize
from repro.tsdb.windows import sliding_windows

WINDOW = 64
RECORDING_LENGTH = 40_000
PLANTED_OFFSETS = (3_200, 11_520, 18_048, 26_880, 35_136)


def make_recording(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A noisy AR(1) recording with a damped-oscillation motif planted."""
    noise = np.empty(RECORDING_LENGTH)
    noise[0] = rng.standard_normal()
    steps = rng.standard_normal(RECORDING_LENGTH)
    for i in range(1, RECORDING_LENGTH):
        noise[i] = 0.7 * noise[i - 1] + steps[i]
    t = np.arange(WINDOW) / WINDOW
    motif = 8.0 * np.sin(6 * np.pi * t) * np.exp(-1.0 * t)
    recording = noise.copy()
    for offset in PLANTED_OFFSETS:
        jitter = 0.3 * rng.standard_normal(WINDOW)
        recording[offset : offset + WINDOW] += motif + jitter
    return recording, motif


def main() -> None:
    rng = np.random.default_rng(13)
    recording, motif = make_recording(rng)
    print(f"recording: {RECORDING_LENGTH:,} points; "
          f"motif planted at offsets {PLANTED_OFFSETS}")

    windows = sliding_windows(recording, window=WINDOW, step=4,
                              name="vibration-windows")
    print(f"indexing {len(windows):,} sliding windows of {WINDOW} points")
    index = build_tardis_index(windows, TardisConfig())
    print(f"index: {len(index.partitions)} partitions")

    # Query with the clean motif shape.
    query = z_normalize(recording[PLANTED_OFFSETS[0]:
                                  PLANTED_OFFSETS[0] + WINDOW])
    answer = knn_multi_partitions_access(index, query, k=60)

    # Exclusion zone: collapse overlapping hits to one per region.
    hits: list[tuple[int, float]] = []
    for neighbor in answer.neighbors:
        offset = neighbor.record_id
        if all(abs(offset - kept) >= WINDOW for kept, _d in hits):
            hits.append((offset, neighbor.distance))
        if len(hits) == len(PLANTED_OFFSETS):
            break

    print("\ntop non-overlapping matches:")
    found = 0
    for offset, distance in hits:
        nearest_plant = min(PLANTED_OFFSETS, key=lambda p: abs(p - offset))
        is_hit = abs(offset - nearest_plant) < WINDOW // 2
        found += int(is_hit)
        marker = "<- planted" if is_hit else ""
        print(f"  offset {offset:>7,}  distance {distance:.3f} {marker}")
    print(f"\napproximate search recovered {found}/{len(PLANTED_OFFSETS)} "
          "planted motif sites")
    if found < len(PLANTED_OFFSETS) - 1:
        raise SystemExit("motif recovery degraded — investigate")

    # Approximate search only probes sibling partitions; a planted site
    # whose window landed elsewhere can be missed.  Exact best-first
    # search (guaranteed complete) closes the gap.
    from repro.core import knn_exact

    exact = knn_exact(index, query, k=60)
    exact_hits: list[int] = []
    for neighbor in exact.neighbors:
        offset = neighbor.record_id
        if all(abs(offset - kept) >= WINDOW for kept in exact_hits):
            exact_hits.append(offset)
        if len(exact_hits) == len(PLANTED_OFFSETS):
            break
    exact_found = sum(
        1
        for offset in exact_hits
        if min(abs(offset - p) for p in PLANTED_OFFSETS) < WINDOW // 2
    )
    print(
        f"exact search recovered {exact_found}/{len(PLANTED_OFFSETS)} "
        f"(loaded {exact.partitions_loaded}/{len(index.partitions)} partitions)"
    )
    if exact_found != len(PLANTED_OFFSETS):
        raise SystemExit("exact search must recover every planted site")


if __name__ == "__main__":
    main()
