#!/usr/bin/env python
"""Operations tour: the full lifecycle of a TARDIS deployment.

Walks one index through everything an operator does between rebuilds:

1. build and validate,
2. persist to disk, reload, re-validate,
3. serve queries with a hot-partition cache and an EXPLAIN report,
4. absorb a skewed stream of inserts (plus a deletion),
5. rebalance the overflowed partitions,
6. answer with a *certified* prefix — provably-exact leading neighbors.

Run with::

    python examples/operations_tour.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    TardisConfig,
    build_tardis_index,
    certified_prefix,
    exact_match,
    explain,
    knn_multi_partitions_access,
    load_index,
    save_index,
)
from repro.tsdb import random_walk
from repro.tsdb.series import z_normalize


def main() -> None:
    rng = np.random.default_rng(11)

    # 1. Build + validate.
    dataset = random_walk(15_000, length=128, seed=2).z_normalized()
    index = build_tardis_index(dataset, TardisConfig())
    index.validate()
    print(f"built: {index.n_records:,} series in {len(index.partitions)} "
          f"partitions (validated)")

    # 2. Persist, reload, re-validate.
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "prod-index"
        save_index(index, target)
        files = sum(1 for _ in target.rglob("*") if _.is_file())
        index = load_index(target)
        index.validate()
        print(f"persisted + reloaded: {files} files, still valid")

    # 3. Serve with a cache; explain one query.
    cache = index.enable_cache(8)
    query = z_normalize(np.cumsum(rng.standard_normal(128)))
    for _ in range(3):  # warm the cache on this query's partitions
        answer = knn_multi_partitions_access(index, query, 10)
    print(f"\ncache after warm-up: hit rate {cache.hit_rate:.0%}")
    print(explain(answer))

    # 4. Maintenance: a skewed insert stream plus one deletion.
    hot = random_walk(2, length=128, seed=900).z_normalized()
    for i in range(6_000):
        base = hot.values[i % 2]
        noisy = base + rng.normal(0, 0.4, size=base.shape)
        index.insert_series(z_normalize(noisy))
    assert index.delete_series(dataset.values[100], 100)
    worst = max(p.n_records for p in index.partitions.values())
    print(f"\nafter +6,000 skewed inserts: hottest partition {worst} records "
          f"(capacity {index.config.partition_capacity})")

    # 5. Rebalance and re-validate.
    report = index.rebalance()
    index.validate()
    worst_after = max(p.n_records for p in index.partitions.values())
    print(f"rebalanced: split {report.partitions_split} partitions, created "
          f"{report.partitions_created}, hottest now {worst_after}")

    # 6. Certified answering.
    answer = knn_multi_partitions_access(index, query, 10,
                                         pth=len(index.partitions))
    m = certified_prefix(index, query, answer)
    print(f"\nfull-coverage query: {m}/10 answers certified exactly correct")
    if m != 10:
        raise SystemExit("full coverage must certify the whole answer")

    # The deleted record must be gone; a fresh insert must be findable.
    assert 100 not in exact_match(index, dataset.values[100]).record_ids
    print("deletion verified; tour complete")


if __name__ == "__main__":
    main()
