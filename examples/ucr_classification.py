#!/usr/bin/env python
"""1-NN time series classification over an indexed training set.

Scenario: the classic UCR-archive workflow — classify test series by the
label of their nearest training neighbor — but with the training set
behind a TARDIS index instead of a linear scan.  Exact best-first kNN
gives the identical classifier (1-NN-ED) while loading only the
partitions the lower bound cannot exclude; the approximate strategies
give a faster, slightly noisier classifier.

The script synthesizes a 3-class dataset of characteristic shapes (UCR
files load the same way via ``repro.tsdb.io.read_ucr``), writes it in UCR
format, reads it back, indexes the training split, and reports accuracy
and partition loads per query strategy.

Run with::

    python examples/ucr_classification.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    TardisConfig,
    build_tardis_index,
    knn_exact,
    knn_multi_partitions_access,
    knn_target_node_access,
)
from repro.tsdb.io import read_ucr
from repro.tsdb.series import z_normalize

LENGTH = 64
PER_CLASS = 2000
N_TEST = 150


def synthesize_ucr_file(path: Path, rng: np.random.Generator) -> None:
    """Write a 3-class shape dataset in UCR format (label, values...)."""
    t = np.arange(LENGTH) / LENGTH
    prototypes = {
        1: np.sin(2 * np.pi * t),                     # one cycle
        2: np.sign(np.sin(4 * np.pi * t)) * 0.8,      # square-ish
        3: 2 * np.abs(2 * (t - np.floor(t + 0.5))),   # triangle
    }
    lines = []
    for label, prototype in prototypes.items():
        for _ in range(PER_CLASS + N_TEST // 3):
            warp = 1.0 + 0.1 * rng.standard_normal()
            noisy = warp * prototype + 0.9 * rng.standard_normal(LENGTH)
            values = ",".join(f"{v:.6f}" for v in noisy)
            lines.append(f"{label},{values}")
    rng.shuffle(lines)
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    rng = np.random.default_rng(21)
    with tempfile.TemporaryDirectory() as tmp:
        ucr_path = Path(tmp) / "Shapes3_TRAIN.txt"
        synthesize_ucr_file(ucr_path, rng)
        dataset, labels = read_ucr(ucr_path)
    print(f"loaded {len(dataset):,} series from UCR format, "
          f"{len(set(labels.tolist()))} classes")

    # Split: last N_TEST rows are the test set.
    train = dataset.subset(np.arange(len(dataset) - N_TEST))
    train = train.z_normalized()
    train_labels = labels[: len(train)]
    test_values = z_normalize(dataset.values[len(train):])
    test_labels = labels[len(train):]

    index = build_tardis_index(train, TardisConfig())
    print(f"indexed training set: {len(index.partitions)} partitions")

    strategies = [
        ("exact 1-NN", lambda q: knn_exact(index, q, 1)),
        ("target-node 1-NN", lambda q: knn_target_node_access(index, q, 1)),
        ("multi-partitions 1-NN",
         lambda q: knn_multi_partitions_access(index, q, 1)),
    ]
    label_of = {int(rid): int(train_labels[i])
                for i, rid in enumerate(train.record_ids)}

    print(f"\nclassifying {N_TEST} held-out series:")
    exact_accuracy = None
    for name, classify in strategies:
        correct = 0
        loads = 0
        for values, truth in zip(test_values, test_labels):
            answer = classify(values)
            predicted = label_of[answer.record_ids[0]]
            correct += int(predicted == int(truth))
            loads += answer.partitions_loaded
        accuracy = correct / len(test_values)
        if exact_accuracy is None:
            exact_accuracy = accuracy
        print(f"  {name:<22} accuracy {accuracy:6.1%}   "
              f"avg partitions/query {loads / len(test_values):.1f}")

    if exact_accuracy < 0.9:
        raise SystemExit("exact 1-NN accuracy collapsed — investigate")


if __name__ == "__main__":
    main()
