#!/usr/bin/env python
"""Near-duplicate detection over SIFT-like image features (Texmex).

Scenario: an image-ingest pipeline receives batches of SIFT descriptors
(the paper's Texmex corpus).  Before storing a new batch it must answer,
per descriptor: "is this *exact* vector already in the archive?" — the
classic dedup gate.  Absent vectors are the common case, so the
per-partition Bloom filters are the difference between an in-memory
answer and a wasted partition load (paper §V-A, Fig. 14).

The example ingests an archive, replays a mixed batch (re-uploads +
genuinely new descriptors), and compares the Bloom-filter path against
the NoBF variant on simulated I/O.

Run with::

    python examples/image_feature_dedup.py
"""

import numpy as np

from repro.core import TardisConfig, build_tardis_index, exact_match
from repro.tsdb import sift_like
from repro.tsdb.series import z_normalize


def main() -> None:
    rng = np.random.default_rng(42)
    archive = sift_like(25_000, seed=11)
    print(
        f"feature archive: {len(archive):,} SIFT-like descriptors "
        f"({archive.length} dims)"
    )

    index = build_tardis_index(archive, TardisConfig())
    print(
        f"index: {len(index.partitions)} partitions, Bloom filters total "
        f"{index.bloom_nbytes() / 1024:.1f} KB"
    )

    # Build the incoming batch: 30 re-uploads + 70 new descriptors.
    reupload_rows = rng.choice(len(archive), size=30, replace=False)
    batch = [("dup", archive.values[row].copy()) for row in reupload_rows]
    for i in range(70):
        base = archive.values[rng.integers(len(archive))]
        fresh = z_normalize(base + rng.normal(0, 0.2, size=base.shape))
        batch.append(("new", fresh))
    rng.shuffle(batch)

    for use_bloom, label in ((True, "with Bloom filters"),
                             (False, "without Bloom filters")):
        duplicates = 0
        partition_loads = 0
        bloom_rejections = 0
        simulated_io = 0.0
        for kind, descriptor in batch:
            result = exact_match(index, descriptor, use_bloom=use_bloom)
            simulated_io += result.simulated_seconds
            partition_loads += result.partitions_loaded
            bloom_rejections += int(result.bloom_rejected)
            if result.found:
                duplicates += 1
                assert kind == "dup", "false duplicate!"
        print(
            f"\n{label}:\n"
            f"  duplicates caught : {duplicates}/30\n"
            f"  partition loads   : {partition_loads} of {len(batch)} lookups\n"
            f"  bloom rejections  : {bloom_rejections}\n"
            f"  simulated query I/O: {simulated_io * 1000:.1f} ms"
        )

    print(
        "\nThe Bloom path answers most absent lookups from memory — that "
        "is the Fig. 14 halving of exact-match latency."
    )


if __name__ == "__main__":
    main()
