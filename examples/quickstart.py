#!/usr/bin/env python
"""Quickstart: build a TARDIS index and run similarity queries.

Builds a clustered TARDIS index over a RandomWalk benchmark dataset, then
runs the paper's two query types:

* exact match (with the per-partition Bloom filter short-circuit), and
* kNN approximate search with all three strategies, compared against the
  brute-force ground truth.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    TardisConfig,
    build_tardis_index,
    brute_force_knn,
    exact_match,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.metrics import error_ratio, recall
from repro.tsdb import random_walk
from repro.tsdb.series import z_normalize


def main() -> None:
    # 1. Data: 20,000 random-walk series of 256 points, z-normalized
    #    (TARDIS, like the paper, indexes normalized series).
    dataset = random_walk(20_000, length=256, seed=1).z_normalized()
    print(f"dataset: {len(dataset):,} series of length {dataset.length}")

    # 2. Build the index.  The defaults mirror the paper's Table II at
    #    reproduction scale; every knob is a TardisConfig field.
    config = TardisConfig()
    index = build_tardis_index(dataset, config)
    print(
        f"index built: {len(index.partitions)} partitions, "
        f"global index {index.global_index_nbytes() / 1024:.1f} KB, "
        f"simulated construction "
        f"{index.construction_ledger.clock_s:.2f} s"
    )

    # 3. Exact match: a series we know is present...
    present = dataset.values[123]
    result = exact_match(index, present)
    print(f"\nexact match (present): found record ids {result.record_ids}")

    # ...and one we know is absent (the Bloom filter usually rejects it
    # without touching disk).
    rng = np.random.default_rng(0)
    absent = z_normalize(present + rng.normal(0, 0.05, size=present.shape))
    result = exact_match(index, absent)
    print(
        f"exact match (absent):  found {result.record_ids}, "
        f"bloom rejected={result.bloom_rejected} "
        f"(partitions loaded: {result.partitions_loaded})"
    )

    # 4. kNN approximate search with the three strategies.
    query = z_normalize(np.cumsum(rng.standard_normal(256)))
    k = 20
    truth = brute_force_knn(dataset, query, k)
    truth_ids = [n.record_id for n in truth]
    truth_dists = [n.distance for n in truth]

    print(f"\n{k}-NN approximate search vs brute-force ground truth:")
    strategies = [
        ("Target Node Access", knn_target_node_access),
        ("One Partition Access", knn_one_partition_access),
        ("Multi-Partitions Access", knn_multi_partitions_access),
    ]
    for name, strategy in strategies:
        answer = strategy(index, query, k)
        print(
            f"  {name:<24} recall={recall(answer.record_ids, truth_ids):5.1%}  "
            f"error ratio={error_ratio(answer.distances, truth_dists):.3f}  "
            f"candidates={answer.candidates_examined:>6,}  "
            f"partitions={answer.partitions_loaded}"
        )


if __name__ == "__main__":
    main()
