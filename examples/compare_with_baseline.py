#!/usr/bin/env python
"""Head-to-head: TARDIS vs the DPiSAX baseline on one dataset.

A miniature version of the paper's evaluation (§VI): builds both systems
on the same DNA-like dataset and identical block storage, then compares

* construction time (simulated, with phase breakdown),
* index sizes (global and local),
* exact-match latency on a 50 % present / 50 % absent workload, and
* kNN accuracy (recall / error ratio) for the baseline and the three
  TARDIS strategies against brute-force ground truth.

Run with::

    python examples/compare_with_baseline.py
"""

from repro.experiments import (
    build_dpisax_with_report,
    build_tardis_with_report,
    evaluate_exact_match,
    evaluate_knn,
    exact_match_workload,
    fmt_bytes,
    fmt_seconds,
    render_table,
)
from repro.experiments.workloads import dataset_with_heldout_queries


def main() -> None:
    dataset, queries = dataset_with_heldout_queries("Dn", 25_000, 20)
    print(f"dataset: {dataset.name}, {len(dataset):,} series of length "
          f"{dataset.length}")

    tardis, trep = build_tardis_with_report(dataset)
    dpisax, brep = build_dpisax_with_report(dataset)

    print("\n== construction (simulated cluster time) ==")
    print(
        render_table(
            ["system", "total", "global phase", "local phase", "partitions"],
            [
                ["TARDIS", fmt_seconds(trep.total_s),
                 fmt_seconds(trep.global_s), fmt_seconds(trep.local_s),
                 trep.n_partitions],
                ["DPiSAX", fmt_seconds(brep.total_s),
                 fmt_seconds(brep.global_s), fmt_seconds(brep.local_s),
                 brep.n_partitions],
            ],
        )
    )

    print("\n== index sizes ==")
    print(
        render_table(
            ["system", "global index", "local indices (excl. data)"],
            [
                ["TARDIS", fmt_bytes(trep.global_index_nbytes),
                 fmt_bytes(trep.local_index_nbytes)],
                ["DPiSAX", fmt_bytes(brep.global_index_nbytes),
                 fmt_bytes(brep.local_index_nbytes)],
            ],
        )
    )

    print("\n== exact match (100 queries, half absent) ==")
    workload = exact_match_workload(dataset, 100)
    rows = []
    for rep in (
        evaluate_exact_match(tardis, workload, use_bloom=True),
        evaluate_exact_match(tardis, workload, use_bloom=False),
        evaluate_exact_match(dpisax, workload),
    ):
        rows.append(
            [rep.system, fmt_seconds(rep.avg_time_s), f"{rep.recall:.0%}",
             rep.partition_loads]
        )
    print(render_table(["system", "avg time", "recall", "partition loads"],
                       rows))

    print("\n== kNN approximate (k=25, 20 held-out queries) ==")
    reports = evaluate_knn(dataset, queries, 25, tardis=tardis, dpisax=dpisax)
    print(
        render_table(
            ["method", "recall", "error ratio", "avg time"],
            [
                [r.method, f"{r.recall:.1%}", f"{r.error_ratio:.3f}",
                 fmt_seconds(r.avg_time_s)]
                for r in reports
            ],
        )
    )


if __name__ == "__main__":
    main()
