#!/usr/bin/env python
"""Weather-station similarity search on skewed NOAA-like data.

Scenario: a climate archive holds temperature curves from thousands of
stations (the paper's NOAA dataset).  An analyst spots an anomalous
station-year — an unusually flat seasonal cycle — and wants the most
similar historical curves to check whether it is a sensor fault or a real
micro-climate.

This exercises TARDIS on its *hardest* data distribution: NOAA-like
series are extremely skewed (most stations share a handful of iSAX-T
signatures), which stresses cascading sigTree splits, overflow leaves, and
partition packing.  The example also shows the accuracy/latency dial the
three kNN strategies offer.

Run with::

    python examples/weather_anomaly_search.py
"""

import numpy as np

from repro.core import (
    TardisConfig,
    build_tardis_index,
    brute_force_knn,
    knn_multi_partitions_access,
    knn_one_partition_access,
    knn_target_node_access,
)
from repro.metrics import error_ratio, recall
from repro.tsdb import noaa_like
from repro.tsdb.series import z_normalize


def make_anomalous_curve(length: int, rng: np.random.Generator) -> np.ndarray:
    """A damped seasonal cycle: the 'is this sensor broken?' shape."""
    t = np.arange(length) / length
    curve = 2.0 * np.sin(2 * np.pi * t) * np.exp(-2.5 * t)
    return z_normalize(curve + 0.3 * rng.standard_normal(length))


def main() -> None:
    rng = np.random.default_rng(7)
    archive = noaa_like(30_000, seed=3)
    print(
        f"climate archive: {len(archive):,} station-year curves of "
        f"{archive.length} samples"
    )

    index = build_tardis_index(archive, TardisConfig())
    sizes = [p.n_records for p in index.partitions.values()]
    print(
        f"index: {len(index.partitions)} partitions "
        f"(min/median/max fill {min(sizes)}/{int(np.median(sizes))}/{max(sizes)}) — "
        "note the skew-driven imbalance the FFD packer absorbs"
    )

    query = make_anomalous_curve(archive.length, rng)
    k = 25
    truth = brute_force_knn(archive, query, k)
    truth_ids = [n.record_id for n in truth]
    print(f"\nlooking for the {k} most similar historical curves")
    print(f"true nearest distance: {truth[0].distance:.3f}")

    # An anomalous query sits in a sparse region of a very skewed archive —
    # the hardest case for signature-routed approximate search.  Exact-set
    # recall drops, but what the analyst needs is *distance* quality: how
    # close the returned curves are to the true nearest ones.
    print("\nstrategy comparison (set recall vs distance quality):")
    truth_dists = [n.distance for n in truth]
    for name, strategy in [
        ("Target Node Access", knn_target_node_access),
        ("One Partition Access", knn_one_partition_access),
        ("Multi-Partitions Access", knn_multi_partitions_access),
    ]:
        answer = strategy(index, query, k)
        hits = recall(answer.record_ids, truth_ids)
        # The routed partition may hold fewer than k curves (this archive
        # is extremely skewed); score distance quality over what came back.
        depth = min(len(answer.distances), k)
        ratio = error_ratio(answer.distances[:depth], truth_dists[:depth])
        print(
            f"  {name:<24} recall={hits:5.1%}  "
            f"error ratio={ratio:.3f}  "
            f"answers={depth}/{k}  "
            f"partitions={answer.partitions_loaded}"
        )

    # Drill into the best answer: are the neighbors genuinely similar?
    best = knn_multi_partitions_access(index, query, k)
    neighbor = archive.series(best.neighbors[0].record_id)
    correlation = float(np.corrcoef(query, neighbor)[0, 1])
    print(
        f"\ntop neighbor record {best.neighbors[0].record_id}: "
        f"distance {best.neighbors[0].distance:.3f}, "
        f"shape correlation {correlation:.2f}"
    )
    verdict = "plausible micro-climate" if correlation > 0.6 else "likely sensor fault"
    print(f"analyst verdict on the anomaly: {verdict}")


if __name__ == "__main__":
    main()
